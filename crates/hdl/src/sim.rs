//! Cycle-based behavioral simulator for checked MiniHDL designs.
//!
//! The simulator follows a two-phase model:
//!
//! 1. **Evaluation** — combinational processes run once each, in the
//!    dependency order computed by the checker, so all wires settle.
//! 2. **Clock edge** — clocked processes compute next register values from
//!    the settled pre-edge state (non-blocking *across* processes,
//!    blocking *within* a process), then all registers commit at once.
//!
//! [`Simulator::step`] packages the standard test-application protocol:
//! apply primary inputs, settle, sample primary outputs, then (for
//! sequential designs) clock once.

use crate::ast::*;
use crate::check::{CheckedDesign, EntityInfo, SymbolId, SymbolKind};
use crate::error::{HdlError, Result};
use crate::span::Span;
use crate::value::Bits;
use std::collections::HashMap;

/// A behavioral simulator for one entity of a [`CheckedDesign`].
///
/// # Examples
///
/// ```
/// use musa_hdl::{parse, Bits, CheckedDesign, Simulator};
///
/// let design = parse(
///     "entity counter is
///        port(clk : in bit; rst : in bit; q : out bits(4));
///        signal c : bits(4);
///        seq(clk) begin
///          if rst = 1 then c <= 0; else c <= c + 1; end if;
///        end;
///        comb begin q <= c; end;
///      end;",
/// )?;
/// let checked = CheckedDesign::new(design)?;
/// let mut sim = Simulator::new(&checked, "counter")?;
/// sim.reset();
/// let zero = Bits::new(1, 0);
/// sim.step(&[zero]); // rst = 0 → count becomes 1
/// let outs = sim.step(&[zero]);
/// assert_eq!(outs[0].raw(), 1); // q observed before the second edge
/// # Ok::<(), musa_hdl::HdlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    checked: &'a CheckedDesign,
    entity: &'a Entity,
    info: &'a EntityInfo,
    /// Current value of every symbol, indexed by [`SymbolId`].
    values: Vec<Bits>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the named entity, in the reset state.
    ///
    /// # Errors
    ///
    /// Returns an error if the design has no entity with that name.
    pub fn new(checked: &'a CheckedDesign, entity_name: &str) -> Result<Self> {
        let (entity, info) = checked.entity(entity_name).ok_or_else(|| {
            HdlError::sim(format!("no entity named `{entity_name}`"), Span::dummy())
        })?;
        let values = info
            .symbols
            .iter()
            .map(|s| Bits::new(s.width, s.init))
            .collect();
        let mut sim = Self {
            checked,
            entity,
            info,
            values,
        };
        sim.reset();
        Ok(sim)
    }

    /// The checked design this simulator runs.
    pub fn checked(&self) -> &'a CheckedDesign {
        self.checked
    }

    /// The entity metadata.
    pub fn info(&self) -> &'a EntityInfo {
        self.info
    }

    /// Restores the power-on state: registers and signals take their
    /// declared initial values, inputs go to zero, wires are re-settled.
    pub fn reset(&mut self) {
        for (i, sym) in self.info.symbols.iter().enumerate() {
            self.values[i] = Bits::new(sym.width, sym.init);
        }
        self.eval();
    }

    /// Sets one data input by symbol id.
    ///
    /// # Panics
    ///
    /// Panics if the symbol is not an input port or the width differs —
    /// both indicate harness bugs, not data-dependent conditions.
    pub fn set_input(&mut self, input: SymbolId, value: Bits) {
        let sym = self.info.symbol(input);
        assert!(
            matches!(sym.kind, SymbolKind::PortIn { .. }),
            "`{}` is not an input port",
            sym.name
        );
        assert_eq!(sym.width, value.width(), "width mismatch on `{}`", sym.name);
        self.values[input.0 as usize] = value;
    }

    /// Sets one data input by name.
    ///
    /// # Errors
    ///
    /// Returns an error if no input port has that name.
    pub fn set_input_by_name(&mut self, name: &str, value: Bits) -> Result<()> {
        let id = self
            .info
            .symbol_by_name(name)
            .filter(|&id| matches!(self.info.symbol(id).kind, SymbolKind::PortIn { .. }))
            .ok_or_else(|| {
                HdlError::sim(format!("no input port named `{name}`"), Span::dummy())
            })?;
        self.set_input(id, value);
        Ok(())
    }

    /// Reads the current value of any symbol.
    pub fn value(&self, id: SymbolId) -> Bits {
        self.values[id.0 as usize]
    }

    /// Reads a symbol's current value by name.
    pub fn value_by_name(&self, name: &str) -> Option<Bits> {
        self.info.symbol_by_name(name).map(|id| self.value(id))
    }

    /// The current primary-output values, in declaration order.
    pub fn outputs(&self) -> Vec<Bits> {
        self.info.outputs.iter().map(|&id| self.value(id)).collect()
    }

    /// Settles all combinational processes.
    pub fn eval(&mut self) {
        for &pidx in &self.info.comb_order {
            self.exec_process(pidx, None);
        }
    }

    /// Applies one rising clock edge to every clocked process, then
    /// re-settles the wires.
    pub fn clock(&mut self) {
        let mut pending: Vec<(SymbolId, Bits)> = Vec::new();
        for &pidx in &self.info.seq_processes {
            let mut overlay = HashMap::new();
            self.exec_process(pidx, Some(&mut overlay));
            pending.extend(overlay);
        }
        for (sym, value) in pending {
            self.values[sym.0 as usize] = value;
        }
        self.eval();
    }

    /// Applies one test vector: sets the data inputs (declaration order),
    /// settles, samples the outputs, then clocks once if the design is
    /// sequential. Returns the sampled outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the data-input count/widths.
    pub fn step(&mut self, inputs: &[Bits]) -> Vec<Bits> {
        assert_eq!(
            inputs.len(),
            self.info.data_inputs.len(),
            "expected {} input values",
            self.info.data_inputs.len()
        );
        for (&port, &value) in self.info.data_inputs.iter().zip(inputs) {
            self.set_input(port, value);
        }
        self.eval();
        let outputs = self.outputs();
        if !self.info.is_combinational() {
            self.clock();
        }
        outputs
    }

    /// Runs a whole sequence from the reset state and returns the output
    /// transcript (one output vector per applied input vector).
    pub fn run(&mut self, sequence: &[Vec<Bits>]) -> Vec<Vec<Bits>> {
        self.reset();
        sequence.iter().map(|v| self.step(v)).collect()
    }

    // ---- process execution ----------------------------------------------

    /// Executes one process. `overlay` is `Some` for clocked processes:
    /// signal writes are staged there (and read back within the same
    /// process), leaving `self.values` at the pre-edge state.
    fn exec_process(&mut self, pidx: usize, overlay: Option<&mut HashMap<SymbolId, Bits>>) {
        let process = &self.entity.processes[pidx];
        // Re-initialize the process variables.
        for (i, sym) in self.info.symbols.iter().enumerate() {
            if let SymbolKind::Var { process: p } = sym.kind {
                if p == pidx {
                    self.values[i] = Bits::new(sym.width, sym.init);
                }
            }
        }
        let mut ctx = Exec {
            info: self.info,
            values: &mut self.values,
            overlay,
        };
        ctx.stmts(&process.body);
    }
}

/// Per-activation execution context.
struct Exec<'s, 'o> {
    info: &'s EntityInfo,
    values: &'s mut Vec<Bits>,
    overlay: Option<&'o mut HashMap<SymbolId, Bits>>,
}

impl Exec<'_, '_> {
    fn read(&self, sym: SymbolId) -> Bits {
        if let Some(overlay) = &self.overlay {
            let s = self.info.symbol(sym);
            if matches!(s.kind, SymbolKind::Signal | SymbolKind::PortOut) {
                if let Some(v) = overlay.get(&sym) {
                    return *v;
                }
            }
        }
        self.values[sym.0 as usize]
    }

    fn write(&mut self, sym: SymbolId, value: Bits) {
        let s = self.info.symbol(sym);
        let staged = matches!(s.kind, SymbolKind::Signal | SymbolKind::PortOut);
        if staged {
            if let Some(overlay) = &mut self.overlay {
                overlay.insert(sym, value);
                return;
            }
        }
        self.values[sym.0 as usize] = value;
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            self.stmt(stmt);
        }
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let sym = self.info.resolved[&target.id];
                let width = self.info.symbol(sym).width;
                match &target.sel {
                    None => {
                        let v = self.expr(value);
                        self.write(sym, v);
                    }
                    Some(Select::Index(index)) => {
                        let ix = self.expr(index).raw();
                        let v = self.expr(value);
                        if ix < width as u64 {
                            let cur = self.read(sym);
                            self.write(sym, cur.with_bit(ix as u32, v.as_bool()));
                        }
                        // Out-of-range dynamic writes are dropped, matching
                        // the synthesized mux-tree behaviour.
                    }
                    Some(Select::Slice { hi, lo }) => {
                        let v = self.expr(value);
                        let cur = self.read(sym);
                        self.write(sym, cur.with_slice(*hi, *lo, v));
                    }
                }
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (cond, body) in arms {
                    if self.expr(cond).as_bool() {
                        self.stmts(body);
                        return;
                    }
                }
                if let Some(body) = else_body {
                    self.stmts(body);
                }
            }
            Stmt::Case {
                subject,
                arms,
                default,
                ..
            } => {
                let v = self.expr(subject).raw();
                for arm in arms {
                    if arm.choices.contains(&v) {
                        self.stmts(&arm.body);
                        return;
                    }
                }
                if let Some(body) = default {
                    self.stmts(body);
                }
            }
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                // The loop variable's symbol id: resolved refs in the body
                // point at it; find it via any body ref, or skip if unused.
                let loop_sym = self.loop_symbol(body, &var.name);
                for i in *lo..=*hi {
                    if let Some(sym) = loop_sym {
                        let width = self.info.symbol(sym).width;
                        self.values[sym.0 as usize] = Bits::new(width, i);
                    }
                    self.stmts(body);
                }
            }
            Stmt::Null { .. } => {}
        }
    }

    /// Finds the symbol id of loop variable `name` by scanning the body
    /// for a resolved reference to a loop-var symbol with that name.
    fn loop_symbol(&self, body: &[Stmt], name: &str) -> Option<SymbolId> {
        let mut found = None;
        walk_exprs(body, &mut |e| {
            if found.is_some() {
                return;
            }
            if let Expr::Ref { id, name: n } = e {
                if n.name == name {
                    if let Some(&sym) = self.info.resolved.get(id) {
                        if matches!(self.info.symbol(sym).kind, SymbolKind::LoopVar) {
                            found = Some(sym);
                        }
                    }
                }
            }
        });
        found
    }

    fn expr(&self, e: &Expr) -> Bits {
        match e {
            Expr::Literal { id, value, .. } => {
                let width = self.info.widths[id];
                Bits::new(width, *value)
            }
            Expr::Ref { id, .. } => self.read(self.info.resolved[id]),
            Expr::Index { base, index, .. } => {
                let b = self.expr(base);
                let ix = self.expr(index).raw();
                if ix < b.width() as u64 {
                    Bits::bit_value(b.bit(ix as u32))
                } else {
                    // Out-of-range dynamic reads yield 0 (mux-tree default).
                    Bits::bit_value(false)
                }
            }
            Expr::Slice { base, hi, lo, .. } => self.expr(base).slice(*hi, *lo),
            Expr::Unary { op, arg, .. } => match op {
                UnaryOp::Not => self.expr(arg).not(),
            },
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.expr(lhs);
                let b = self.expr(rhs);
                match op {
                    BinOp::And => a.and(b),
                    BinOp::Or => a.or(b),
                    BinOp::Xor => a.xor(b),
                    BinOp::Nand => a.nand(b),
                    BinOp::Nor => a.nor(b),
                    BinOp::Xnor => a.xnor(b),
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    BinOp::Eq => a.cmp_eq(b),
                    BinOp::Ne => a.cmp_eq(b).not(),
                    BinOp::Lt => a.cmp_lt(b),
                    BinOp::Le => b.cmp_lt(a).not(),
                    BinOp::Gt => b.cmp_lt(a),
                    BinOp::Ge => a.cmp_lt(b).not(),
                }
            }
            Expr::Reduce { op, arg, .. } => {
                let v = self.expr(arg);
                match op {
                    ReduceOp::Or => v.reduce_or(),
                    ReduceOp::And => v.reduce_and(),
                    ReduceOp::Xor => v.reduce_xor(),
                }
            }
            Expr::Concat { lhs, rhs, .. } => self.expr(lhs).concat(self.expr(rhs)),
            Expr::Shift { op, arg, amount, .. } => {
                let v = self.expr(arg);
                match op {
                    ShiftOp::Left => v.shl(*amount),
                    ShiftOp::Right => v.shr(*amount),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CheckedDesign;
    use crate::parser::parse;

    fn sim_for<'a>(checked: &'a CheckedDesign, name: &str) -> Simulator<'a> {
        Simulator::new(checked, name).unwrap()
    }

    fn checked(src: &str) -> CheckedDesign {
        CheckedDesign::new(parse(src).unwrap()).unwrap()
    }

    fn b(w: u32, v: u64) -> Bits {
        Bits::new(w, v)
    }

    #[test]
    fn combinational_gate() {
        let d = checked(
            "entity g is port(a : in bit; b : in bit; y : out bit);
             comb begin y <= a and not b; end;
             end;",
        );
        let mut sim = sim_for(&d, "g");
        for (a, bb, expect) in [(0, 0, 0), (0, 1, 0), (1, 0, 1), (1, 1, 0)] {
            let outs = sim.step(&[b(1, a), b(1, bb)]);
            assert_eq!(outs[0].raw(), expect, "a={a} b={bb}");
        }
    }

    #[test]
    fn arithmetic_datapath() {
        let d = checked(
            "entity alu is
               port(x : in bits(8); y : in bits(8); op : in bits(2); z : out bits(8));
             comb begin
               case op is
                 when 0 => z <= x + y;
                 when 1 => z <= x - y;
                 when 2 => z <= x * y;
                 when others => z <= x xor y;
               end case;
             end;
             end;",
        );
        let mut sim = sim_for(&d, "alu");
        assert_eq!(sim.step(&[b(8, 200), b(8, 100), b(2, 0)])[0].raw(), 44);
        assert_eq!(sim.step(&[b(8, 5), b(8, 9), b(2, 1)])[0].raw(), 252);
        assert_eq!(sim.step(&[b(8, 20), b(8, 20), b(2, 2)])[0].raw(), 144);
        assert_eq!(sim.step(&[b(8, 0xF0), b(8, 0xFF), b(2, 3)])[0].raw(), 0x0F);
    }

    #[test]
    fn counter_counts_and_resets() {
        let d = checked(
            "entity counter is
               port(clk : in bit; rst : in bit; q : out bits(4));
             signal c : bits(4);
             seq(clk) begin
               if rst = 1 then c <= 0; else c <= c + 1; end if;
             end;
             comb begin q <= c; end;
             end;",
        );
        let mut sim = sim_for(&d, "counter");
        let lo = b(1, 0);
        let hi = b(1, 1);
        // Outputs are sampled before each edge.
        for expect in 0..5 {
            assert_eq!(sim.step(&[lo])[0].raw(), expect);
        }
        assert_eq!(sim.step(&[hi])[0].raw(), 5); // reset applied at this edge
        assert_eq!(sim.step(&[lo])[0].raw(), 0);
        assert_eq!(sim.step(&[lo])[0].raw(), 1);
    }

    #[test]
    fn counter_wraps() {
        let d = checked(
            "entity c is port(clk : in bit; q : out bits(2));
             signal r : bits(2);
             seq(clk) begin r <= r + 1; end;
             comb begin q <= r; end;
             end;",
        );
        let mut sim = sim_for(&d, "c");
        let vals: Vec<u64> = (0..6).map(|_| sim.step(&[])[0].raw()).collect();
        assert_eq!(vals, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn blocking_within_seq_process() {
        // v is assigned then read within the same activation: the read
        // sees the new value (blocking), so w gets the *incremented* c.
        let d = checked(
            "entity p is port(clk : in bit; q : out bits(4); w : out bits(4));
             signal c : bits(4);
             signal d : bits(4);
             seq(clk) begin
               c <= c + 1;
               d <= c;
             end;
             comb begin q <= c; w <= d; end;
             end;",
        );
        let mut sim = sim_for(&d, "p");
        sim.step(&[]); // after edge: c=1, d=1 (blocking read of staged c)
        let outs = sim.step(&[]);
        assert_eq!(outs[0].raw(), 1);
        assert_eq!(outs[1].raw(), 1);
    }

    #[test]
    fn nonblocking_across_seq_processes() {
        // Two processes exchange registers: both read the pre-edge values.
        let d = checked(
            "entity swap is port(clk : in bit; qa : out bit; qb : out bit);
             signal a : bit := 1;
             signal b : bit := 0;
             seq(clk) begin a <= b; end;
             seq(clk) begin b <= a; end;
             comb begin qa <= a; qb <= b; end;
             end;",
        );
        let mut sim = sim_for(&d, "swap");
        let o0 = sim.step(&[]);
        assert_eq!((o0[0].raw(), o0[1].raw()), (1, 0));
        let o1 = sim.step(&[]);
        assert_eq!((o1[0].raw(), o1[1].raw()), (0, 1), "values must swap");
        let o2 = sim.step(&[]);
        assert_eq!((o2[0].raw(), o2[1].raw()), (1, 0));
    }

    #[test]
    fn variables_are_reinitialized_each_activation() {
        let d = checked(
            "entity v is port(a : in bits(4); y : out bits(4));
             comb
               var acc : bits(4);
             begin
               acc := acc + a;
               y <= acc;
             end;
             end;",
        );
        let mut sim = sim_for(&d, "v");
        // If acc persisted, the second application would give 6.
        assert_eq!(sim.step(&[b(4, 3)])[0].raw(), 3);
        assert_eq!(sim.step(&[b(4, 3)])[0].raw(), 3);
    }

    #[test]
    fn for_loop_reverses_bits() {
        let d = checked(
            "entity rev is port(a : in bits(8); y : out bits(8));
             comb begin
               for i in 0 .. 7 loop
                 y[i] <= a[7 - i];
               end loop;
             end;
             end;",
        );
        let mut sim = sim_for(&d, "rev");
        assert_eq!(sim.step(&[b(8, 0b1000_0010)])[0].raw(), 0b0100_0001);
        assert_eq!(sim.step(&[b(8, 0xFF)])[0].raw(), 0xFF);
        assert_eq!(sim.step(&[b(8, 0x01)])[0].raw(), 0x80);
    }

    #[test]
    fn dynamic_index_selects_and_defaults() {
        let d = checked(
            "entity mux is port(a : in bits(4); s : in bits(3); y : out bit);
             comb begin y <= a[s]; end;
             end;",
        );
        let mut sim = sim_for(&d, "mux");
        assert_eq!(sim.step(&[b(4, 0b1010), b(3, 1)])[0].raw(), 1);
        assert_eq!(sim.step(&[b(4, 0b1010), b(3, 0)])[0].raw(), 0);
        assert_eq!(sim.step(&[b(4, 0b1010), b(3, 3)])[0].raw(), 1);
        // Out-of-range select reads 0.
        assert_eq!(sim.step(&[b(4, 0b1111), b(3, 5)])[0].raw(), 0);
    }

    #[test]
    fn concat_slice_shift_pipeline() {
        let d = checked(
            "entity m is port(a : in bits(4); y : out bits(8));
             comb begin
               y <= (a & a[3:0]) xor (0x0F sll 2);
             end;
             end;",
        );
        let mut sim = sim_for(&d, "m");
        assert_eq!(sim.step(&[b(4, 0b1001)])[0].raw(), 0b1001_1001 ^ 0b0011_1100);
    }

    #[test]
    fn constants_participate() {
        let d = checked(
            "entity k is port(a : in bits(4); y : out bit);
             constant LIMIT : bits(4) := 9;
             comb begin y <= a > LIMIT; end;
             end;",
        );
        let mut sim = sim_for(&d, "k");
        assert_eq!(sim.step(&[b(4, 9)])[0].raw(), 0);
        assert_eq!(sim.step(&[b(4, 10)])[0].raw(), 1);
    }

    #[test]
    fn comparisons_all_directions() {
        let d = checked(
            "entity cmp is port(a : in bits(4); b : in bits(4);
                               lt : out bit; le : out bit; gt : out bit;
                               ge : out bit; eq : out bit; ne : out bit);
             comb begin
               lt <= a < b; le <= a <= b; gt <= a > b;
               ge <= a >= b; eq <= a = b; ne <= a /= b;
             end;
             end;",
        );
        let mut sim = sim_for(&d, "cmp");
        let outs = sim.step(&[b(4, 3), b(4, 7)]);
        let raws: Vec<u64> = outs.iter().map(|o| o.raw()).collect();
        assert_eq!(raws, vec![1, 1, 0, 0, 0, 1]);
        let outs = sim.step(&[b(4, 7), b(4, 7)]);
        let raws: Vec<u64> = outs.iter().map(|o| o.raw()).collect();
        assert_eq!(raws, vec![0, 1, 0, 1, 1, 0]);
    }

    #[test]
    fn reset_restores_power_on_state() {
        let d = checked(
            "entity c is port(clk : in bit; q : out bits(4));
             signal r : bits(4) := 5;
             seq(clk) begin r <= r + 1; end;
             comb begin q <= r; end;
             end;",
        );
        let mut sim = sim_for(&d, "c");
        sim.step(&[]);
        sim.step(&[]);
        assert_eq!(sim.value_by_name("r").unwrap().raw(), 7);
        sim.reset();
        assert_eq!(sim.value_by_name("r").unwrap().raw(), 5);
        assert_eq!(sim.outputs()[0].raw(), 5);
    }

    #[test]
    fn run_produces_transcript() {
        let d = checked(
            "entity t is port(clk : in bit; d : in bit; q : out bit);
             signal r : bit;
             seq(clk) begin r <= d; end;
             comb begin q <= r; end;
             end;",
        );
        let mut sim = sim_for(&d, "t");
        let seq = vec![vec![b(1, 1)], vec![b(1, 0)], vec![b(1, 1)], vec![b(1, 1)]];
        let transcript = sim.run(&seq);
        let qs: Vec<u64> = transcript.iter().map(|o| o[0].raw()).collect();
        // Flop delays d by one cycle, initial 0.
        assert_eq!(qs, vec![0, 1, 0, 1]);
    }

    #[test]
    fn wire_chain_across_processes() {
        let d = checked(
            "entity w is port(a : in bits(4); y : out bits(4));
             signal s1 : bits(4);
             signal s2 : bits(4);
             comb begin y <= s2 + 1; end;
             comb begin s2 <= s1 * 2; end;
             comb begin s1 <= a + 1; end;
             end;",
        );
        let mut sim = sim_for(&d, "w");
        // y = ((a+1)*2)+1
        assert_eq!(sim.step(&[b(4, 3)])[0].raw(), 9);
        assert_eq!(sim.step(&[b(4, 0)])[0].raw(), 3);
    }

    #[test]
    fn missing_entity_is_error() {
        let d = checked(
            "entity a is port(x : in bit; y : out bit);
             comb begin y <= x; end;
             end;",
        );
        assert!(Simulator::new(&d, "nope").is_err());
    }

    #[test]
    fn set_input_by_name_errors_on_output() {
        let d = checked(
            "entity a is port(x : in bit; y : out bit);
             comb begin y <= x; end;
             end;",
        );
        let mut sim = sim_for(&d, "a");
        assert!(sim.set_input_by_name("y", b(1, 0)).is_err());
        assert!(sim.set_input_by_name("x", b(1, 1)).is_ok());
    }
}
