//! MiniHDL error type.

use crate::span::Span;
use std::fmt;

/// The phase that produced a [`HdlError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenisation of the source text.
    Lex,
    /// Syntax analysis.
    Parse,
    /// Semantic checking (names, widths, drivers, loops).
    Check,
    /// Runtime evaluation (out-of-range dynamic index, …).
    Sim,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lex"),
            Phase::Parse => write!(f, "parse"),
            Phase::Check => write!(f, "check"),
            Phase::Sim => write!(f, "sim"),
        }
    }
}

/// An error produced while processing MiniHDL source.
///
/// Carries the phase, a human-readable message and the source span the
/// message refers to. Use [`HdlError::render`] to format the error with
/// line/column information against the original source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdlError {
    /// Processing phase that failed.
    pub phase: Phase,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
    /// Location in the source text.
    pub span: Span,
}

impl HdlError {
    /// Creates a lexer error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        Self {
            phase: Phase::Lex,
            message: message.into(),
            span,
        }
    }

    /// Creates a parser error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        Self {
            phase: Phase::Parse,
            message: message.into(),
            span,
        }
    }

    /// Creates a checker error.
    pub fn check(message: impl Into<String>, span: Span) -> Self {
        Self {
            phase: Phase::Check,
            message: message.into(),
            span,
        }
    }

    /// Creates a simulation error.
    pub fn sim(message: impl Into<String>, span: Span) -> Self {
        Self {
            phase: Phase::Sim,
            message: message.into(),
            span,
        }
    }

    /// Renders the error with 1-based line/column computed from `source`.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        format!("{} error at {line}:{col}: {}", self.phase, self.message)
    }
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {} (at {})", self.phase, self.message, self.span)
    }
}

impl std::error::Error for HdlError {}

/// Convenient result alias for HDL operations.
pub type Result<T> = std::result::Result<T, HdlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_line() {
        let src = "entity e is\n  bogus\nend";
        let err = HdlError::parse("unexpected identifier", Span::new(14, 19));
        assert_eq!(err.render(src), "parse error at 2:3: unexpected identifier");
    }

    #[test]
    fn display_includes_phase() {
        let err = HdlError::check("width mismatch", Span::new(0, 1));
        assert_eq!(err.to_string(), "check error: width mismatch (at 0..1)");
    }
}
