//! Source locations and diagnostics support.

use std::fmt;

/// A half-open byte range into a MiniHDL source string.
///
/// Spans are attached to tokens, AST nodes and errors so diagnostics can
/// point at the offending source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering `lo..hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        Self { lo, hi }
    }

    /// A zero-length span used for synthesized nodes.
    pub fn dummy() -> Self {
        Self::default()
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// Computes the 1-based line and column of the span start in `source`.
    pub fn line_col(&self, source: &str) -> (u32, u32) {
        let mut line = 1u32;
        let mut col = 1u32;
        for (i, ch) in source.char_indices() {
            if i as u32 >= self.lo {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 1));
        assert_eq!(Span::new(6, 7).line_col(src), (2, 3));
        assert_eq!(Span::new(8, 9).line_col(src), (3, 1));
    }

    #[test]
    fn display() {
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
    }
}
