//! Semantic analysis: names, widths, drivers, clocking and loop freedom.
//!
//! [`CheckedDesign::new`] validates a parsed [`Design`] and produces the
//! side tables (symbol table, per-expression widths, process schedules)
//! consumed by the simulator, the synthesizer and the mutation engine.
//!
//! ## Rules enforced
//!
//! * every name is declared exactly once; reserved words are unusable;
//! * every expression has a consistent width; decimal literals adopt the
//!   width of their context;
//! * `<=` targets are signals/output ports, `:=` targets are variables;
//! * every signal and output port has **exactly one** driving process;
//!   input ports and constants are never assigned;
//! * clocks (`seq(clk)`) are width-1 input ports, never read as data;
//! * combinational processes never read a signal they drive, and the
//!   process dependency graph is acyclic (no combinational loops);
//! * combinational processes fully assign every driven signal on every
//!   execution path (no inferred latches), tracked per bit;
//! * static indices and slices are in range; case choices fit the subject
//!   width and are not duplicated; loop ranges are non-empty.

use crate::ast::*;
use crate::error::{HdlError, Result};
use crate::span::Span;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

/// Identity of a symbol (port, signal, constant, variable, loop index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

/// What a symbol is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    /// Input port. `clock` is true when some `seq` process uses it.
    PortIn {
        /// Used as a clock by at least one process.
        clock: bool,
    },
    /// Output port.
    PortOut,
    /// Internal signal.
    Signal,
    /// Named compile-time constant with its value.
    Const(u64),
    /// Process-local variable (owning process index).
    Var {
        /// Index of the owning process in `Entity::processes`.
        process: usize,
    },
    /// A `for` loop index (read-only).
    LoopVar,
}

/// A resolved symbol.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Name as declared.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Kind.
    pub kind: SymbolKind,
    /// Initial / reset value (ports: 0).
    pub init: u64,
}

/// Storage classification of a driven symbol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveClass {
    /// Driven by a combinational process.
    Wire,
    /// Driven by a clocked process.
    Register,
}

/// Checked metadata for one entity.
#[derive(Debug, Clone)]
pub struct EntityInfo {
    /// All symbols; indexed by [`SymbolId`].
    pub symbols: Vec<Symbol>,
    /// Expression node → resolved width.
    pub widths: HashMap<NodeId, u32>,
    /// `Ref`/`Target` node → symbol.
    pub resolved: HashMap<NodeId, SymbolId>,
    /// Signal / output-port → driving process index.
    pub drivers: HashMap<SymbolId, usize>,
    /// Wire or register classification for each driven symbol.
    pub drive_class: HashMap<SymbolId, DriveClass>,
    /// Combinational process indices in evaluation (topological) order.
    pub comb_order: Vec<usize>,
    /// Clocked process indices in declaration order.
    pub seq_processes: Vec<usize>,
    /// Clock input ports.
    pub clocks: Vec<SymbolId>,
    /// Non-clock input ports, in declaration order.
    pub data_inputs: Vec<SymbolId>,
    /// Output ports, in declaration order.
    pub outputs: Vec<SymbolId>,
}

impl EntityInfo {
    /// Looks up a top-level symbol (port/signal/constant) by name.
    pub fn symbol_by_name(&self, name: &str) -> Option<SymbolId> {
        self.symbols
            .iter()
            .position(|s| {
                s.name == name
                    && !matches!(s.kind, SymbolKind::Var { .. } | SymbolKind::LoopVar)
            })
            .map(|i| SymbolId(i as u32))
    }

    /// The symbol for an id.
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.0 as usize]
    }

    /// `true` when the entity has no clocked process (pure combinational).
    pub fn is_combinational(&self) -> bool {
        self.seq_processes.is_empty()
    }

    /// Total width of the data inputs (the test-vector width).
    pub fn input_bits(&self) -> u32 {
        self.data_inputs
            .iter()
            .map(|&s| self.symbol(s).width)
            .sum()
    }

    /// `true` when a symbol is a reset-like input: a width-1 input port
    /// named `reset` or `rst` (case-insensitive).
    ///
    /// Test generators use this testbench convention to pulse resets
    /// sparsely instead of toggling them like data — the standard
    /// stimulus discipline for sequential circuits.
    pub fn reset_like(&self, sym: SymbolId) -> bool {
        let s = self.symbol(sym);
        matches!(s.kind, SymbolKind::PortIn { clock: false })
            && s.width == 1
            && {
                let lower = s.name.to_ascii_lowercase();
                lower == "reset" || lower == "rst"
            }
    }

    /// Total width of the outputs.
    pub fn output_bits(&self) -> u32 {
        self.outputs.iter().map(|&s| self.symbol(s).width).sum()
    }
}

/// A design that passed semantic analysis, with its side tables.
///
/// Owns the [`Design`]; the simulator and synthesizer borrow it.
///
/// # Examples
///
/// ```
/// let design = musa_hdl::parse(
///     "entity buf is port(a : in bit; y : out bit);
///        comb begin y <= a; end;
///      end;",
/// )?;
/// let checked = musa_hdl::CheckedDesign::new(design)?;
/// let info = checked.entity_info("buf").unwrap();
/// assert!(info.is_combinational());
/// # Ok::<(), musa_hdl::HdlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CheckedDesign {
    design: Design,
    infos: Vec<EntityInfo>,
}

impl CheckedDesign {
    /// Checks a parsed design.
    ///
    /// # Errors
    ///
    /// Returns the first check-phase [`HdlError`] found.
    pub fn new(design: Design) -> Result<Self> {
        let mut infos = Vec::with_capacity(design.entities.len());
        for entity in &design.entities {
            infos.push(Checker::run(entity)?);
        }
        Ok(Self { design, infos })
    }

    /// The underlying design.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Consumes the wrapper and returns the design.
    pub fn into_design(self) -> Design {
        self.design
    }

    /// The entity and its checked metadata, by name.
    pub fn entity(&self, name: &str) -> Option<(&Entity, &EntityInfo)> {
        self.design
            .entities
            .iter()
            .position(|e| e.name.name == name)
            .map(|i| (&self.design.entities[i], &self.infos[i]))
    }

    /// The checked metadata for an entity, by name.
    pub fn entity_info(&self, name: &str) -> Option<&EntityInfo> {
        self.entity(name).map(|(_, info)| info)
    }

    /// Entity/metadata pairs in declaration order.
    pub fn entities(&self) -> impl Iterator<Item = (&Entity, &EntityInfo)> {
        self.design.entities.iter().zip(self.infos.iter())
    }
}

struct Checker<'a> {
    entity: &'a Entity,
    symbols: Vec<Symbol>,
    top_names: HashMap<String, SymbolId>,
    widths: HashMap<NodeId, u32>,
    resolved: HashMap<NodeId, SymbolId>,
    drivers: HashMap<SymbolId, usize>,
    /// Scope stack for vars and loop variables.
    scopes: Vec<(String, SymbolId)>,
    current_process: usize,
}

impl<'a> Checker<'a> {
    fn run(entity: &'a Entity) -> Result<EntityInfo> {
        let mut c = Checker {
            entity,
            symbols: Vec::new(),
            top_names: HashMap::new(),
            widths: HashMap::new(),
            resolved: HashMap::new(),
            drivers: HashMap::new(),
            scopes: Vec::new(),
            current_process: 0,
        };
        c.declare_top_level()?;
        c.mark_clocks()?;
        for (i, process) in entity.processes.iter().enumerate() {
            c.current_process = i;
            c.check_process(process)?;
        }
        c.check_all_outputs_driven()?;
        c.check_clock_not_read()?;
        let (comb_order, seq_processes) = c.schedule()?;
        c.check_full_assignment(&comb_order)?;

        let mut drive_class = HashMap::new();
        for (&sym, &proc_idx) in &c.drivers {
            let class = match entity.processes[proc_idx].kind {
                ProcessKind::Comb => DriveClass::Wire,
                ProcessKind::Seq { .. } => DriveClass::Register,
            };
            drive_class.insert(sym, class);
        }

        let clocks: Vec<SymbolId> = c
            .symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SymbolKind::PortIn { clock: true }))
            .map(|(i, _)| SymbolId(i as u32))
            .collect();
        let data_inputs: Vec<SymbolId> = c
            .symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SymbolKind::PortIn { clock: false }))
            .map(|(i, _)| SymbolId(i as u32))
            .collect();
        let outputs: Vec<SymbolId> = c
            .symbols
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, SymbolKind::PortOut))
            .map(|(i, _)| SymbolId(i as u32))
            .collect();

        Ok(EntityInfo {
            symbols: c.symbols,
            widths: c.widths,
            resolved: c.resolved,
            drivers: c.drivers,
            drive_class,
            comb_order,
            seq_processes,
            clocks,
            data_inputs,
            outputs,
        })
    }

    // ---- declarations --------------------------------------------------

    fn declare(&mut self, name: &Ident, symbol: Symbol) -> Result<SymbolId> {
        let id = SymbolId(self.symbols.len() as u32);
        match self.top_names.entry(name.name.clone()) {
            Entry::Occupied(_) => Err(HdlError::check(
                format!("`{}` is declared more than once", name.name),
                name.span,
            )),
            Entry::Vacant(v) => {
                v.insert(id);
                self.symbols.push(symbol);
                Ok(id)
            }
        }
    }

    fn declare_top_level(&mut self) -> Result<()> {
        for port in &self.entity.ports {
            let kind = match port.dir {
                PortDir::In => SymbolKind::PortIn { clock: false },
                PortDir::Out => SymbolKind::PortOut,
            };
            self.declare(
                &port.name,
                Symbol {
                    name: port.name.name.clone(),
                    width: port.width,
                    kind,
                    init: 0,
                },
            )?;
        }
        for cst in &self.entity.consts {
            if cst.width < 64 && cst.value >= (1u64 << cst.width) {
                return Err(HdlError::check(
                    format!(
                        "constant `{}` value {} does not fit in {} bits",
                        cst.name.name, cst.value, cst.width
                    ),
                    cst.name.span,
                ));
            }
            self.declare(
                &cst.name,
                Symbol {
                    name: cst.name.name.clone(),
                    width: cst.width,
                    kind: SymbolKind::Const(cst.value),
                    init: cst.value,
                },
            )?;
        }
        for sig in &self.entity.signals {
            if sig.width < 64 && sig.init >= (1u64 << sig.width) {
                return Err(HdlError::check(
                    format!(
                        "signal `{}` initial value {} does not fit in {} bits",
                        sig.name.name, sig.init, sig.width
                    ),
                    sig.name.span,
                ));
            }
            self.declare(
                &sig.name,
                Symbol {
                    name: sig.name.name.clone(),
                    width: sig.width,
                    kind: SymbolKind::Signal,
                    init: sig.init,
                },
            )?;
        }
        Ok(())
    }

    fn mark_clocks(&mut self) -> Result<()> {
        for process in &self.entity.processes {
            if let ProcessKind::Seq { clock } = &process.kind {
                let id = *self.top_names.get(&clock.name).ok_or_else(|| {
                    HdlError::check(format!("unknown clock `{}`", clock.name), clock.span)
                })?;
                let sym = &mut self.symbols[id.0 as usize];
                match sym.kind {
                    SymbolKind::PortIn { .. } if sym.width == 1 => {
                        sym.kind = SymbolKind::PortIn { clock: true };
                    }
                    _ => {
                        return Err(HdlError::check(
                            format!("clock `{}` must be a width-1 input port", clock.name),
                            clock.span,
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    // ---- name lookup ---------------------------------------------------

    fn lookup(&self, name: &Ident) -> Result<SymbolId> {
        // Innermost scope first (vars, loop indices), then top level.
        for (n, id) in self.scopes.iter().rev() {
            if *n == name.name {
                return Ok(*id);
            }
        }
        self.top_names.get(&name.name).copied().ok_or_else(|| {
            HdlError::check(format!("unknown name `{}`", name.name), name.span)
        })
    }

    /// Width of an expression if derivable without context; `None` for
    /// context-dependent decimal literals.
    fn try_det(&self, e: &Expr) -> Option<u32> {
        match e {
            Expr::Literal { width, .. } => *width,
            Expr::Ref { name, .. } => {
                for (n, id) in self.scopes.iter().rev() {
                    if *n == name.name {
                        return Some(self.symbols[id.0 as usize].width);
                    }
                }
                self.top_names
                    .get(&name.name)
                    .map(|id| self.symbols[id.0 as usize].width)
            }
            Expr::Index { .. } => Some(1),
            Expr::Slice { hi, lo, .. } => Some(hi - lo + 1),
            Expr::Unary { arg, .. } => self.try_det(arg),
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_relational() {
                    Some(1)
                } else {
                    self.try_det(lhs).or_else(|| self.try_det(rhs))
                }
            }
            Expr::Reduce { .. } => Some(1),
            Expr::Concat { lhs, rhs, .. } => {
                Some(self.try_det(lhs)? + self.try_det(rhs)?)
            }
            Expr::Shift { arg, .. } => self.try_det(arg),
        }
    }

    fn expr_span(e: &Expr) -> Span {
        match e {
            Expr::Literal { span, .. } => *span,
            Expr::Ref { name, .. } => name.span,
            Expr::Index { base, .. }
            | Expr::Slice { base, .. } => Self::expr_span(base),
            Expr::Unary { arg, .. } | Expr::Reduce { arg, .. } | Expr::Shift { arg, .. } => {
                Self::expr_span(arg)
            }
            Expr::Binary { lhs, .. } | Expr::Concat { lhs, .. } => Self::expr_span(lhs),
        }
    }

    /// Checks an expression against an optional expected width and records
    /// its resolved width. Returns the width.
    fn check_expr(&mut self, e: &Expr, expected: Option<u32>) -> Result<u32> {
        let width = match e {
            Expr::Literal {
                value,
                width,
                span,
                ..
            } => {
                let w = match (width, expected) {
                    (Some(w0), Some(we)) if *w0 != we => {
                        return Err(HdlError::check(
                            format!("literal has width {w0}, context requires {we}"),
                            *span,
                        ));
                    }
                    (Some(w0), _) => *w0,
                    (None, Some(we)) => we,
                    (None, None) => {
                        return Err(HdlError::check(
                            "cannot infer width of decimal literal; use a binary/hex \
                             literal or add context",
                            *span,
                        ));
                    }
                };
                if w < 64 && *value >= (1u64 << w) {
                    return Err(HdlError::check(
                        format!("literal {value} does not fit in {w} bits"),
                        *span,
                    ));
                }
                w
            }
            Expr::Ref { id, name } => {
                let sym_id = self.lookup(name)?;
                let sym = &self.symbols[sym_id.0 as usize];
                if matches!(sym.kind, SymbolKind::PortIn { clock: true }) {
                    return Err(HdlError::check(
                        format!("clock `{}` cannot be read as data", name.name),
                        name.span,
                    ));
                }
                self.resolved.insert(*id, sym_id);
                sym.width
            }
            Expr::Index { base, index, .. } => {
                let base_w = self.check_det(base)?;
                if let Expr::Literal { value, span, .. } = index.as_ref() {
                    if *value >= base_w as u64 {
                        return Err(HdlError::check(
                            format!("index {value} out of range for width {base_w}"),
                            *span,
                        ));
                    }
                    self.widths.insert(index.id(), 32);
                } else {
                    self.check_det(index)?;
                }
                1
            }
            Expr::Slice { base, hi, lo, .. } => {
                let base_w = self.check_det(base)?;
                if hi < lo {
                    return Err(HdlError::check(
                        format!("slice [{hi}:{lo}] has hi < lo"),
                        Self::expr_span(base),
                    ));
                }
                if *hi >= base_w {
                    return Err(HdlError::check(
                        format!("slice [{hi}:{lo}] out of range for width {base_w}"),
                        Self::expr_span(base),
                    ));
                }
                hi - lo + 1
            }
            Expr::Unary { arg, .. } => self.check_expr(arg, expected)?,
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_relational() {
                    let w = self
                        .try_det(lhs)
                        .or_else(|| self.try_det(rhs))
                        .ok_or_else(|| {
                            HdlError::check(
                                "cannot infer operand width of comparison",
                                Self::expr_span(e),
                            )
                        })?;
                    self.check_expr(lhs, Some(w))?;
                    self.check_expr(rhs, Some(w))?;
                    1
                } else {
                    let w = self
                        .try_det(lhs)
                        .or_else(|| self.try_det(rhs))
                        .or(expected)
                        .ok_or_else(|| {
                            HdlError::check(
                                format!("cannot infer width of `{}` expression", op.symbol()),
                                Self::expr_span(e),
                            )
                        })?;
                    self.check_expr(lhs, Some(w))?;
                    self.check_expr(rhs, Some(w))?;
                    w
                }
            }
            Expr::Reduce { arg, .. } => {
                self.check_det(arg)?;
                1
            }
            Expr::Concat { lhs, rhs, .. } => {
                let wl = self.check_det(lhs)?;
                let wr = self.check_det(rhs)?;
                if wl + wr > 64 {
                    return Err(HdlError::check(
                        format!("concatenation width {} exceeds 64", wl + wr),
                        Self::expr_span(e),
                    ));
                }
                wl + wr
            }
            Expr::Shift { arg, .. } => {
                let w = match self.try_det(arg).or(expected) {
                    Some(w) => w,
                    None => {
                        return Err(HdlError::check(
                            "cannot infer width of shift operand",
                            Self::expr_span(e),
                        ));
                    }
                };
                self.check_expr(arg, Some(w))?;
                w
            }
        };
        if let Some(we) = expected {
            if we != width {
                return Err(HdlError::check(
                    format!("expression has width {width}, context requires {we}"),
                    Self::expr_span(e),
                ));
            }
        }
        self.widths.insert(e.id(), width);
        Ok(width)
    }

    /// Checks an expression whose width must be self-determined.
    fn check_det(&mut self, e: &Expr) -> Result<u32> {
        let w = self.try_det(e).ok_or_else(|| {
            HdlError::check("cannot infer expression width", Self::expr_span(e))
        })?;
        self.check_expr(e, Some(w))
    }

    // ---- statements ----------------------------------------------------

    fn check_process(&mut self, process: &Process) -> Result<()> {
        let scope_base = self.scopes.len();
        for var in &process.vars {
            if var.width < 64 && var.init >= (1u64 << var.width) {
                return Err(HdlError::check(
                    format!(
                        "variable `{}` initial value {} does not fit in {} bits",
                        var.name.name, var.init, var.width
                    ),
                    var.name.span,
                ));
            }
            if self.top_names.contains_key(&var.name.name)
                || self.scopes.iter().any(|(n, _)| *n == var.name.name)
            {
                return Err(HdlError::check(
                    format!("`{}` shadows an existing declaration", var.name.name),
                    var.name.span,
                ));
            }
            let id = SymbolId(self.symbols.len() as u32);
            self.symbols.push(Symbol {
                name: var.name.name.clone(),
                width: var.width,
                kind: SymbolKind::Var {
                    process: self.current_process,
                },
                init: var.init,
            });
            self.scopes.push((var.name.name.clone(), id));
        }
        self.check_stmts(&process.body, &process.kind)?;
        self.scopes.truncate(scope_base);
        Ok(())
    }

    fn check_stmts(&mut self, stmts: &[Stmt], kind: &ProcessKind) -> Result<()> {
        for stmt in stmts {
            self.check_stmt(stmt, kind)?;
        }
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt, kind: &ProcessKind) -> Result<()> {
        match stmt {
            Stmt::Assign {
                kind: akind,
                target,
                value,
                ..
            } => {
                let sym_id = self.lookup(&target.base)?;
                let sym = self.symbols[sym_id.0 as usize].clone();
                match (&sym.kind, akind) {
                    (SymbolKind::PortOut | SymbolKind::Signal, AssignKind::Signal) => {
                        match self.drivers.entry(sym_id) {
                            Entry::Occupied(o) if *o.get() != self.current_process => {
                                return Err(HdlError::check(
                                    format!("`{}` is driven by more than one process", sym.name),
                                    target.base.span,
                                ));
                            }
                            Entry::Occupied(_) => {}
                            Entry::Vacant(v) => {
                                v.insert(self.current_process);
                            }
                        }
                    }
                    (SymbolKind::Var { process }, AssignKind::Var) => {
                        if *process != self.current_process {
                            return Err(HdlError::check(
                                format!("variable `{}` belongs to another process", sym.name),
                                target.base.span,
                            ));
                        }
                    }
                    (SymbolKind::PortOut | SymbolKind::Signal, AssignKind::Var) => {
                        return Err(HdlError::check(
                            format!("use `<=` to assign signal `{}`", sym.name),
                            target.base.span,
                        ));
                    }
                    (SymbolKind::Var { .. }, AssignKind::Signal) => {
                        return Err(HdlError::check(
                            format!("use `:=` to assign variable `{}`", sym.name),
                            target.base.span,
                        ));
                    }
                    (SymbolKind::PortIn { .. }, _) => {
                        return Err(HdlError::check(
                            format!("input port `{}` cannot be assigned", sym.name),
                            target.base.span,
                        ));
                    }
                    (SymbolKind::Const(_), _) => {
                        return Err(HdlError::check(
                            format!("constant `{}` cannot be assigned", sym.name),
                            target.base.span,
                        ));
                    }
                    (SymbolKind::LoopVar, _) => {
                        return Err(HdlError::check(
                            format!("loop index `{}` cannot be assigned", sym.name),
                            target.base.span,
                        ));
                    }
                }
                self.resolved.insert(target.id, sym_id);
                let value_width = match &target.sel {
                    None => sym.width,
                    Some(Select::Index(index)) => {
                        if let Expr::Literal { value, span, .. } = index {
                            if *value >= sym.width as u64 {
                                return Err(HdlError::check(
                                    format!(
                                        "index {value} out of range for `{}` (width {})",
                                        sym.name, sym.width
                                    ),
                                    *span,
                                ));
                            }
                            self.widths.insert(index.id(), 32);
                        } else {
                            self.check_det(index)?;
                        }
                        1
                    }
                    Some(Select::Slice { hi, lo }) => {
                        if hi < lo || *hi >= sym.width {
                            return Err(HdlError::check(
                                format!(
                                    "slice [{hi}:{lo}] out of range for `{}` (width {})",
                                    sym.name, sym.width
                                ),
                                target.base.span,
                            ));
                        }
                        hi - lo + 1
                    }
                };
                self.check_expr(value, Some(value_width))?;
                Ok(())
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (cond, body) in arms {
                    self.check_expr(cond, Some(1))?;
                    self.check_stmts(body, kind)?;
                }
                if let Some(body) = else_body {
                    self.check_stmts(body, kind)?;
                }
                Ok(())
            }
            Stmt::Case {
                subject,
                arms,
                default,
                ..
            } => {
                let w = self.check_det(subject)?;
                let mut seen = HashSet::new();
                for arm in arms {
                    for &choice in &arm.choices {
                        if w < 64 && choice >= (1u64 << w) {
                            return Err(HdlError::check(
                                format!("case choice {choice} does not fit in {w} bits"),
                                Self::expr_span(subject),
                            ));
                        }
                        if !seen.insert(choice) {
                            return Err(HdlError::check(
                                format!("duplicate case choice {choice}"),
                                Self::expr_span(subject),
                            ));
                        }
                    }
                    self.check_stmts(&arm.body, kind)?;
                }
                if let Some(body) = default {
                    self.check_stmts(body, kind)?;
                }
                Ok(())
            }
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                if self.top_names.contains_key(&var.name)
                    || self.scopes.iter().any(|(n, _)| *n == var.name)
                {
                    return Err(HdlError::check(
                        format!("loop index `{}` shadows an existing declaration", var.name),
                        var.span,
                    ));
                }
                // Width: enough bits for `hi` (at least 1).
                let width = 64 - hi.leading_zeros().min(63);
                let width = width.max(1);
                let id = SymbolId(self.symbols.len() as u32);
                self.symbols.push(Symbol {
                    name: var.name.clone(),
                    width,
                    kind: SymbolKind::LoopVar,
                    init: *lo,
                });
                self.scopes.push((var.name.clone(), id));
                self.check_stmts(body, kind)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::Null { .. } => Ok(()),
        }
    }

    // ---- whole-entity checks --------------------------------------------

    fn check_all_outputs_driven(&self) -> Result<()> {
        // Output ports must be driven (interface contract). Internal
        // signals may be undriven: they behave as constants holding their
        // initial value — which is exactly what an SDL mutant that deletes
        // a register's only assignment produces.
        for (i, sym) in self.symbols.iter().enumerate() {
            let id = SymbolId(i as u32);
            if matches!(sym.kind, SymbolKind::PortOut) && !self.drivers.contains_key(&id) {
                return Err(HdlError::check(
                    format!("output port `{}` is never driven", sym.name),
                    Span::dummy(),
                ));
            }
        }
        Ok(())
    }

    fn check_clock_not_read(&self) -> Result<()> {
        // Reads of clocks are rejected during expression checking; here we
        // additionally reject clocks that are also driven (impossible by
        // construction: clocks are input ports) — nothing further to do.
        Ok(())
    }

    /// Signals/ports read by a process (transitively through its
    /// expressions; variables and constants excluded).
    fn process_reads(&self, process: &Process) -> HashSet<SymbolId> {
        let mut reads = HashSet::new();
        walk_exprs(&process.body, &mut |e| {
            if let Expr::Ref { id, .. } = e {
                if let Some(&sym_id) = self.resolved.get(id) {
                    let sym = &self.symbols[sym_id.0 as usize];
                    if matches!(
                        sym.kind,
                        SymbolKind::PortIn { .. } | SymbolKind::PortOut | SymbolKind::Signal
                    ) {
                        reads.insert(sym_id);
                    }
                }
            }
        });
        reads
    }

    /// Signals/ports driven by a process.
    fn process_drives(&self, process_idx: usize) -> HashSet<SymbolId> {
        self.drivers
            .iter()
            .filter(|(_, &p)| p == process_idx)
            .map(|(&s, _)| s)
            .collect()
    }

    fn schedule(&self) -> Result<(Vec<usize>, Vec<usize>)> {
        let entity = self.entity;
        let comb: Vec<usize> = entity
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.kind, ProcessKind::Comb))
            .map(|(i, _)| i)
            .collect();
        let seq: Vec<usize> = entity
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.kind, ProcessKind::Seq { .. }))
            .map(|(i, _)| i)
            .collect();

        // A combinational process must not read its own outputs.
        for &i in &comb {
            let reads = self.process_reads(&entity.processes[i]);
            let drives = self.process_drives(i);
            if let Some(sym) = reads.intersection(&drives).next() {
                return Err(HdlError::check(
                    format!(
                        "combinational process reads `{}` which it also drives",
                        self.symbols[sym.0 as usize].name
                    ),
                    Span::dummy(),
                ));
            }
        }

        // Topological order on wire dependencies (Kahn's algorithm).
        let mut dependents: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut in_degree: HashMap<usize, usize> = comb.iter().map(|&i| (i, 0)).collect();
        for &reader in &comb {
            let reads = self.process_reads(&entity.processes[reader]);
            for sym in reads {
                if let Some(&writer) = self.drivers.get(&sym) {
                    if writer != reader
                        && matches!(entity.processes[writer].kind, ProcessKind::Comb)
                    {
                        dependents.entry(writer).or_default().push(reader);
                        *in_degree.get_mut(&reader).unwrap() += 1;
                    }
                }
            }
        }
        let mut ready: Vec<usize> = comb
            .iter()
            .copied()
            .filter(|i| in_degree[i] == 0)
            .collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(comb.len());
        while let Some(next) = ready.pop() {
            order.push(next);
            if let Some(deps) = dependents.get(&next) {
                for &d in deps {
                    let deg = in_degree.get_mut(&d).unwrap();
                    *deg -= 1;
                    if *deg == 0 {
                        ready.push(d);
                    }
                }
            }
        }
        if order.len() != comb.len() {
            return Err(HdlError::check(
                "combinational loop between processes",
                Span::dummy(),
            ));
        }
        Ok((order, seq))
    }

    // ---- full-assignment (latch-freedom) for comb processes -------------

    fn check_full_assignment(&self, comb_order: &[usize]) -> Result<()> {
        for &i in comb_order {
            let process = &self.entity.processes[i];
            let assigned = self.assigned_masks(&process.body, &HashMap::new());
            for sym_id in self.process_drives(i) {
                let sym = &self.symbols[sym_id.0 as usize];
                let full = if sym.width == 64 {
                    u64::MAX
                } else {
                    (1u64 << sym.width) - 1
                };
                let mask = assigned.get(&sym_id).copied().unwrap_or(0);
                if mask & full != full {
                    return Err(HdlError::check(
                        format!(
                            "combinational process may leave `{}` partially unassigned \
                             (covered bits {:#b} of {:#b})",
                            sym.name, mask, full
                        ),
                        Span::dummy(),
                    ));
                }
            }
        }
        Ok(())
    }

    /// Per-signal bit masks guaranteed to be assigned on **every** path
    /// through `stmts`. `loop_bounds` maps an active loop index name to its
    /// inclusive range.
    fn assigned_masks(
        &self,
        stmts: &[Stmt],
        loop_bounds: &HashMap<String, (u64, u64)>,
    ) -> HashMap<SymbolId, u64> {
        let mut acc: HashMap<SymbolId, u64> = HashMap::new();
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, .. } => {
                    let Some(&sym_id) = self.resolved.get(&target.id) else {
                        continue;
                    };
                    let sym = &self.symbols[sym_id.0 as usize];
                    if !matches!(sym.kind, SymbolKind::PortOut | SymbolKind::Signal) {
                        continue;
                    }
                    let full = if sym.width == 64 {
                        u64::MAX
                    } else {
                        (1u64 << sym.width) - 1
                    };
                    let add = match &target.sel {
                        None => full,
                        Some(Select::Slice { hi, lo }) => {
                            let w = hi - lo + 1;
                            let m = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                            m << lo
                        }
                        Some(Select::Index(index)) => match index {
                            Expr::Literal { value, .. } if *value < 64 => 1u64 << value,
                            Expr::Ref { name, .. } => {
                                // Loop-index-driven assignment covers the
                                // whole traversed range.
                                if let Some(&(lo, hi)) = loop_bounds.get(&name.name) {
                                    let mut m = 0u64;
                                    let hi = hi.min(63);
                                    for b in lo..=hi {
                                        m |= 1u64 << b;
                                    }
                                    m
                                } else {
                                    0
                                }
                            }
                            _ => 0,
                        },
                    };
                    *acc.entry(sym_id).or_insert(0) |= add & full;
                }
                Stmt::If {
                    arms, else_body, ..
                } => {
                    if let Some(else_body) = else_body {
                        let mut branch_masks: Vec<HashMap<SymbolId, u64>> = arms
                            .iter()
                            .map(|(_, body)| self.assigned_masks(body, loop_bounds))
                            .collect();
                        branch_masks.push(self.assigned_masks(else_body, loop_bounds));
                        merge_intersection(&mut acc, &branch_masks);
                    }
                }
                Stmt::Case {
                    subject,
                    arms,
                    default,
                    ..
                } => {
                    let mut branch_masks: Vec<HashMap<SymbolId, u64>> = arms
                        .iter()
                        .map(|arm| self.assigned_masks(&arm.body, loop_bounds))
                        .collect();
                    let covers_all = if let Some(w) = self.widths.get(&subject.id()) {
                        if *w <= 16 {
                            let total: usize = arms.iter().map(|a| a.choices.len()).sum();
                            total == (1usize << w)
                        } else {
                            false
                        }
                    } else {
                        false
                    };
                    if let Some(default) = default {
                        branch_masks.push(self.assigned_masks(default, loop_bounds));
                        merge_intersection(&mut acc, &branch_masks);
                    } else if covers_all && !branch_masks.is_empty() {
                        merge_intersection(&mut acc, &branch_masks);
                    }
                }
                Stmt::For {
                    var, lo, hi, body, ..
                } => {
                    let mut bounds = loop_bounds.clone();
                    bounds.insert(var.name.clone(), (*lo, *hi));
                    let body_masks = self.assigned_masks(body, &bounds);
                    for (sym, mask) in body_masks {
                        *acc.entry(sym).or_insert(0) |= mask;
                    }
                }
                Stmt::Null { .. } => {}
            }
        }
        acc
    }
}

/// ANDs together the per-branch masks (a signal is covered only by bits
/// assigned in *every* branch) and ORs the result into `acc`.
fn merge_intersection(acc: &mut HashMap<SymbolId, u64>, branches: &[HashMap<SymbolId, u64>]) {
    let Some(first) = branches.first() else {
        return;
    };
    for (&sym, &mask0) in first {
        let mut mask = mask0;
        for other in &branches[1..] {
            mask &= other.get(&sym).copied().unwrap_or(0);
        }
        if mask != 0 {
            *acc.entry(sym).or_insert(0) |= mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check(src: &str) -> Result<CheckedDesign> {
        CheckedDesign::new(parse(src)?)
    }

    fn check_err(src: &str) -> String {
        check(src).unwrap_err().message
    }

    const COUNTER: &str = "
        entity counter is
          port(clk : in bit; rst : in bit; en : in bit; q : out bits(4));
          signal count : bits(4) := 0;
          seq(clk) begin
            if rst = 1 then
              count <= 0;
            elsif en = 1 then
              count <= count + 1;
            end if;
          end;
          comb begin
            q <= count;
          end;
        end counter;
    ";

    #[test]
    fn counter_checks() {
        let checked = check(COUNTER).unwrap();
        let info = checked.entity_info("counter").unwrap();
        assert_eq!(info.clocks.len(), 1);
        assert_eq!(info.data_inputs.len(), 2); // rst, en
        assert_eq!(info.outputs.len(), 1);
        assert!(!info.is_combinational());
        assert_eq!(info.input_bits(), 2);
        assert_eq!(info.output_bits(), 4);
        let count = info.symbol_by_name("count").unwrap();
        assert_eq!(info.drive_class[&count], DriveClass::Register);
        let q = info.symbol_by_name("q").unwrap();
        assert_eq!(info.drive_class[&q], DriveClass::Wire);
    }

    #[test]
    fn literal_width_inference_from_target() {
        let checked = check(
            "entity e is port(a : in bits(4); y : out bits(4));
             comb begin y <= a + 3; end;
             end;",
        )
        .unwrap();
        assert!(checked.entity_info("e").is_some());
    }

    #[test]
    fn rejects_uninferrable_literal() {
        let msg = check_err(
            "entity e is port(a : in bits(8); y : out bit);
             comb begin y <= 3 = 3; end;
             end;",
        );
        assert!(msg.contains("cannot infer"), "{msg}");
    }

    #[test]
    fn rejects_width_mismatch() {
        let msg = check_err(
            "entity e is port(a : in bits(4); b : in bits(5); y : out bits(4));
             comb begin y <= a and b; end;
             end;",
        );
        assert!(msg.contains("width"), "{msg}");
    }

    #[test]
    fn rejects_literal_too_big() {
        let msg = check_err(
            "entity e is port(a : in bits(3); y : out bits(3));
             comb begin y <= a + 9; end;
             end;",
        );
        assert!(msg.contains("does not fit"), "{msg}");
    }

    #[test]
    fn rejects_unknown_name() {
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit);
             comb begin y <= zz; end;
             end;",
        );
        assert!(msg.contains("unknown name"), "{msg}");
    }

    #[test]
    fn rejects_duplicate_declaration() {
        let msg = check_err(
            "entity e is port(a : in bit; a : in bit; y : out bit);
             comb begin y <= a; end;
             end;",
        );
        assert!(msg.contains("more than once"), "{msg}");
    }

    #[test]
    fn rejects_multiple_drivers() {
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit);
             comb begin y <= a; end;
             comb begin y <= not a; end;
             end;",
        );
        assert!(msg.contains("more than one process"), "{msg}");
    }

    #[test]
    fn rejects_undriven_output() {
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit; z : out bit);
             comb begin y <= a; end;
             end;",
        );
        assert!(msg.contains("never driven"), "{msg}");
    }

    #[test]
    fn rejects_assign_to_input() {
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit);
             comb begin a <= y; y <= a; end;
             end;",
        );
        assert!(msg.contains("cannot be assigned"), "{msg}");
    }

    #[test]
    fn rejects_wrong_assign_operator() {
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit);
             comb begin y := a; end;
             end;",
        );
        assert!(msg.contains("use `<=`"), "{msg}");
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit);
             comb var t : bit; begin t <= a; y <= t; end;
             end;",
        );
        assert!(msg.contains("use `:=`"), "{msg}");
    }

    #[test]
    fn rejects_clock_read_as_data() {
        let msg = check_err(
            "entity e is port(clk : in bit; y : out bit);
             signal r : bit;
             seq(clk) begin r <= not r; end;
             comb begin y <= clk; end;
             end;",
        );
        assert!(msg.contains("clock"), "{msg}");
    }

    #[test]
    fn rejects_wide_clock() {
        let msg = check_err(
            "entity e is port(clk : in bits(2); y : out bit);
             signal r : bit;
             seq(clk) begin r <= not r; end;
             comb begin y <= r; end;
             end;",
        );
        assert!(msg.contains("width-1 input port"), "{msg}");
    }

    #[test]
    fn rejects_comb_self_read() {
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit);
             comb begin y <= not y; end;
             end;",
        );
        assert!(msg.contains("also drives"), "{msg}");
    }

    #[test]
    fn rejects_comb_loop_between_processes() {
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit);
             signal s : bit;
             signal t : bit;
             comb begin s <= t and a; end;
             comb begin t <= s or a; end;
             comb begin y <= s; end;
             end;",
        );
        assert!(msg.contains("combinational loop"), "{msg}");
    }

    #[test]
    fn comb_order_respects_dependencies() {
        let checked = check(
            "entity e is port(a : in bit; y : out bit);
             signal s : bit;
             signal t : bit;
             comb begin y <= t; end;
             comb begin t <= s; end;
             comb begin s <= a; end;
             end;",
        )
        .unwrap();
        let info = checked.entity_info("e").unwrap();
        // Process 2 drives s, 1 drives t (reads s), 0 drives y (reads t).
        assert_eq!(info.comb_order, vec![2, 1, 0]);
    }

    #[test]
    fn rejects_partial_comb_assignment() {
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit);
             comb begin
               if a = 1 then y <= 1; end if;
             end;
             end;",
        );
        assert!(msg.contains("partially unassigned"), "{msg}");
    }

    #[test]
    fn accepts_if_else_full_assignment() {
        assert!(check(
            "entity e is port(a : in bit; y : out bit);
             comb begin
               if a = 1 then y <= 1; else y <= 0; end if;
             end;
             end;"
        )
        .is_ok());
    }

    #[test]
    fn accepts_case_with_default() {
        assert!(check(
            "entity e is port(a : in bits(2); y : out bit);
             comb begin
               case a is
                 when 0 => y <= 1;
                 when others => y <= 0;
               end case;
             end;
             end;"
        )
        .is_ok());
    }

    #[test]
    fn accepts_exhaustive_case_without_default() {
        assert!(check(
            "entity e is port(a : in bits(2); y : out bit);
             comb begin
               case a is
                 when 0 => y <= 1;
                 when 1 => y <= 0;
                 when 2 => y <= 0;
                 when 3 => y <= 1;
               end case;
             end;
             end;"
        )
        .is_ok());
    }

    #[test]
    fn rejects_inexhaustive_case_without_default() {
        let msg = check_err(
            "entity e is port(a : in bits(2); y : out bit);
             comb begin
               case a is
                 when 0 => y <= 1;
                 when 1 => y <= 0;
               end case;
             end;
             end;",
        );
        assert!(msg.contains("partially unassigned"), "{msg}");
    }

    #[test]
    fn accepts_loop_bit_coverage() {
        assert!(check(
            "entity e is port(a : in bits(8); y : out bits(8));
             comb begin
               for i in 0 .. 7 loop
                 y[i] <= not a[i];
               end loop;
             end;
             end;"
        )
        .is_ok());
    }

    #[test]
    fn rejects_incomplete_loop_coverage() {
        let msg = check_err(
            "entity e is port(a : in bits(8); y : out bits(8));
             comb begin
               for i in 0 .. 6 loop
                 y[i] <= not a[i];
               end loop;
             end;
             end;",
        );
        assert!(msg.contains("partially unassigned"), "{msg}");
    }

    #[test]
    fn accepts_slice_composition_coverage() {
        assert!(check(
            "entity e is port(a : in bits(8); y : out bits(8));
             comb begin
               y[7:4] <= a[3:0];
               y[3:0] <= a[7:4];
             end;
             end;"
        )
        .is_ok());
    }

    #[test]
    fn rejects_duplicate_case_choice() {
        let msg = check_err(
            "entity e is port(a : in bits(2); y : out bit);
             comb begin
               case a is
                 when 1 => y <= 1;
                 when 1 => y <= 0;
                 when others => y <= 0;
               end case;
             end;
             end;",
        );
        assert!(msg.contains("duplicate"), "{msg}");
    }

    #[test]
    fn rejects_case_choice_too_wide() {
        let msg = check_err(
            "entity e is port(a : in bits(2); y : out bit);
             comb begin
               case a is
                 when 5 => y <= 1;
                 when others => y <= 0;
               end case;
             end;
             end;",
        );
        assert!(msg.contains("does not fit"), "{msg}");
    }

    #[test]
    fn rejects_static_index_out_of_range() {
        let msg = check_err(
            "entity e is port(a : in bits(4); y : out bit);
             comb begin y <= a[4]; end;
             end;",
        );
        assert!(msg.contains("out of range"), "{msg}");
    }

    #[test]
    fn rejects_slice_out_of_range() {
        let msg = check_err(
            "entity e is port(a : in bits(4); y : out bits(3));
             comb begin y <= a[4:2]; end;
             end;",
        );
        assert!(msg.contains("out of range"), "{msg}");
    }

    #[test]
    fn rejects_loop_var_assignment() {
        let msg = check_err(
            "entity e is port(a : in bits(4); y : out bits(4));
             comb begin
               y <= a;
               for i in 0 .. 3 loop
                 i := 0;
               end loop;
             end;
             end;",
        );
        // `:=` to loop var: loop index cannot be assigned.
        assert!(msg.contains("loop index"), "{msg}");
    }

    #[test]
    fn rejects_var_shadowing() {
        let msg = check_err(
            "entity e is port(a : in bit; y : out bit);
             comb var a : bit; begin a := 1; y <= a; end;
             end;",
        );
        assert!(msg.contains("shadows"), "{msg}");
    }

    #[test]
    fn variable_flow_checks() {
        let checked = check(
            "entity e is port(a : in bits(4); y : out bits(4));
             comb
               var t : bits(4);
             begin
               t := a + 1;
               t := t * t;
               y <= t;
             end;
             end;",
        )
        .unwrap();
        assert!(checked.entity_info("e").is_some());
    }

    #[test]
    fn concat_and_reduce_widths() {
        let checked = check(
            "entity e is port(a : in bits(3); b : in bits(5); y : out bits(8); p : out bit);
             comb begin
               y <= a & b;
               p <= xorr(a) xor orr(b);
             end;
             end;",
        )
        .unwrap();
        assert!(checked.entity_info("e").is_some());
    }

    #[test]
    fn seq_register_may_hold() {
        // Registers keep their value when not assigned: no full-assignment
        // requirement in clocked processes.
        assert!(check(
            "entity e is port(clk : in bit; en : in bit; q : out bit);
             signal r : bit;
             seq(clk) begin
               if en = 1 then r <= not r; end if;
             end;
             comb begin q <= r; end;
             end;"
        )
        .is_ok());
    }

    #[test]
    fn seq_may_read_own_register() {
        assert!(check(
            "entity e is port(clk : in bit; q : out bits(4));
             signal c : bits(4);
             seq(clk) begin c <= c + 1; end;
             comb begin q <= c; end;
             end;"
        )
        .is_ok());
    }

    #[test]
    fn constants_resolve_and_check() {
        let checked = check(
            "entity e is port(a : in bits(4); y : out bit);
             constant LIMIT : bits(4) := 9;
             comb begin y <= a > LIMIT; end;
             end;",
        )
        .unwrap();
        let info = checked.entity_info("e").unwrap();
        let limit = info.symbol_by_name("LIMIT").unwrap();
        assert!(matches!(info.symbol(limit).kind, SymbolKind::Const(9)));
    }

    #[test]
    fn rejects_constant_value_overflow() {
        let msg = check_err(
            "entity e is port(a : in bits(4); y : out bit);
             constant BIG : bits(2) := 7;
             comb begin y <= orr(a); end;
             end;",
        );
        assert!(msg.contains("does not fit"), "{msg}");
    }
}
