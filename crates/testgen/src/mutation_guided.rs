//! Mutation-guided generation of validation data (paper §2).
//!
//! "To generate validation data with mutation testing, we select vectors
//! that can distinguish a program from a set of faulty versions" — the
//! generator proposes pseudo-random candidates and keeps only those that
//! kill still-live mutants (greedy cover), so the emitted data is
//! *mutation-adequate* by construction.
//!
//! * Combinational entities: candidates are single vectors; the output
//!   is one session of selected vectors.
//! * Sequential entities: candidates are short subsequences applied from
//!   reset; each selected subsequence becomes its own session and is
//!   truncated right after its last new kill.

use musa_hdl::{Bits, CheckedDesign, Simulator};
use musa_mutation::{
    reference_transcript, run_one, Engine, LaneOptions, LanePlan, Mutant, MutationError,
    OptLevel, TestSequence,
};
use musa_prng::{Prng, SplitMix64};

use crate::random::random_sequence;

/// How candidates are admitted into the validation data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// **One witness per mutant**: every killable mutant contributes the
    /// first candidate that kills *it*, even when an earlier selection
    /// already killed it. This mirrors constraint-based mutation test
    /// generation (DeMillo & Offutt, the paper's reference \[2\]), where
    /// each mutant yields its own test case — validation campaigns are
    /// redundant by nature, and that redundancy is what makes the data
    /// a useful structural test set.
    PerMutant,
    /// Accept candidates **in generation order** whenever they kill at
    /// least one still-live mutant — the minimal mutation-adequate
    /// filter (no per-mutant redundancy). The default: it matches the
    /// paper's data-efficiency profile (positive ΔL at equal coverage).
    #[default]
    FirstCome,
    /// Greedy set-cover: repeatedly take the candidate killing the most
    /// live mutants. Produces near-minimal data (useful for compaction
    /// studies; *not* what the paper measures).
    Greedy,
}

/// Configuration of the mutation-guided generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MgConfig {
    /// Candidate vectors (combinational) or subsequences (sequential)
    /// proposed per round.
    pub pool_size: usize,
    /// Length of each sequential candidate subsequence.
    pub subseq_len: usize,
    /// Rounds without a new kill before giving up on the survivors.
    pub max_rounds: usize,
    /// Candidate admission policy.
    pub selection: Selection,
    /// PRNG seed.
    pub seed: u64,
    /// Mutant-execution engine grading the candidate pools. Both
    /// engines emit bit-identical data; `lanes` grades up to 63 live
    /// mutants per simulation pass.
    pub engine: Engine,
    /// Lane-tape optimizer level (ignored by the scalar engine). Both
    /// levels emit bit-identical data.
    pub opt: OptLevel,
}

impl Default for MgConfig {
    fn default() -> Self {
        Self {
            pool_size: 128,
            subseq_len: 24,
            max_rounds: 12,
            selection: Selection::FirstCome,
            seed: 0x6D67,
            engine: Engine::default(),
            opt: OptLevel::default(),
        }
    }
}

impl MgConfig {
    /// A light-weight configuration for unit tests and quick runs.
    pub fn fast(seed: u64) -> Self {
        Self {
            pool_size: 48,
            subseq_len: 12,
            max_rounds: 6,
            selection: Selection::FirstCome,
            seed,
            engine: Engine::default(),
            opt: OptLevel::default(),
        }
    }

    /// Returns a copy graded by the given engine.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Returns a copy with the given lane-tape optimizer level.
    #[must_use]
    pub fn with_opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }
}

/// The generator's output.
#[derive(Debug, Clone)]
pub struct GeneratedTests {
    /// Test sessions; each is applied from the reset state.
    pub sessions: Vec<TestSequence>,
    /// Per input mutant: killed by the emitted data?
    pub killed: Vec<bool>,
    /// Rounds actually executed.
    pub rounds: usize,
}

impl GeneratedTests {
    /// Total number of vectors across all sessions (the paper's test
    /// *length*).
    pub fn total_len(&self) -> usize {
        self.sessions.iter().map(|s| s.len()).sum()
    }

    /// Number of mutants killed.
    pub fn killed_count(&self) -> usize {
        self.killed.iter().filter(|&&k| k).count()
    }
}

/// Generates mutation-adequate validation data for `mutants`.
///
/// # Errors
///
/// Propagates [`MutationError`] when a mutant does not belong to the
/// design or the entity is unknown.
pub fn mutation_guided_tests(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    config: &MgConfig,
) -> Result<GeneratedTests, MutationError> {
    let info = checked
        .entity_info(entity)
        .ok_or_else(|| MutationError::EntityNotFound(entity.to_string()))?;
    if info.is_combinational() {
        combinational(checked, entity, mutants, config)
    } else {
        sequential(checked, entity, mutants, config)
    }
}

/// Greedy cover over single candidate vectors (combinational).
fn combinational(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    config: &MgConfig,
) -> Result<GeneratedTests, MutationError> {
    let info = checked.entity_info(entity).expect("entity checked above");
    let mut rng = SplitMix64::new(config.seed);
    let mut killed = vec![false; mutants.len()];
    let mut selected: TestSequence = Vec::new();
    let mut rounds = 0usize;

    while killed.iter().any(|&k| !k) && rounds < config.max_rounds {
        rounds += 1;
        let pool = random_sequence(info, config.pool_size, rng.next_u64());

        // Kill matrix: per live mutant, the set of pool vectors that kill
        // it. Combinational ⇒ vectors are independent, one run suffices.
        // The lane engine grades 63 live mutants per pass; the scalar
        // engine one — the matrices are bit-identical.
        let live: Vec<usize> = (0..mutants.len()).filter(|&i| !killed[i]).collect();
        let kills: Vec<Vec<bool>> = match config.engine {
            Engine::Scalar => {
                let reference = reference_transcript(checked, entity, &pool)?;
                let mut kills = Vec::with_capacity(live.len());
                for &mi in &live {
                    let mutated = mutants[mi].apply(checked)?;
                    let mut sim = Simulator::new(&mutated, entity)
                        .map_err(|_| MutationError::EntityNotFound(entity.to_string()))?;
                    let row: Vec<bool> = pool
                        .iter()
                        .zip(&reference)
                        .map(|(vector, expected)| sim.step(vector) != *expected)
                        .collect();
                    kills.push(row);
                }
                kills
            }
            Engine::Lanes => {
                let subset: Vec<Mutant> =
                    live.iter().map(|&mi| mutants[mi].clone()).collect();
                let options = LaneOptions::default().with_opt(config.opt);
                let plan = LanePlan::new(checked, entity, &subset, &options)?;
                plan.kill_rows(&pool)?.0
            }
        };

        // Admit vectors from this pool.
        let mut live_mask: Vec<bool> = vec![true; live.len()];
        let mut any_selected = false;
        match config.selection {
            Selection::PerMutant => {
                // Mutant-major order: each live mutant appends its first
                // killing vector from this pool.
                for (slot, row) in kills.iter().enumerate() {
                    if let Some(v) = row.iter().position(|&k| k) {
                        selected.push(pool[v].clone());
                        any_selected = true;
                        live_mask[slot] = false;
                        killed[live[slot]] = true;
                    }
                }
            }
            Selection::FirstCome => {
                for v in 0..pool.len() {
                    let gain = kills
                        .iter()
                        .zip(&live_mask)
                        .filter(|(row, &alive)| alive && row[v])
                        .count();
                    if gain == 0 {
                        continue;
                    }
                    selected.push(pool[v].clone());
                    any_selected = true;
                    for (slot, alive) in live_mask.iter_mut().enumerate() {
                        if *alive && kills[slot][v] {
                            *alive = false;
                            killed[live[slot]] = true;
                        }
                    }
                }
            }
            Selection::Greedy => loop {
                let mut best: Option<(usize, usize)> = None; // (vector, gain)
                for v in 0..pool.len() {
                    let gain = kills
                        .iter()
                        .zip(&live_mask)
                        .filter(|(row, &alive)| alive && row[v])
                        .count();
                    if gain > 0 && best.map(|(_, g)| gain > g).unwrap_or(true) {
                        best = Some((v, gain));
                    }
                }
                let Some((v, _)) = best else { break };
                selected.push(pool[v].clone());
                any_selected = true;
                for (slot, alive) in live_mask.iter_mut().enumerate() {
                    if *alive && kills[slot][v] {
                        *alive = false;
                        killed[live[slot]] = true;
                    }
                }
            },
        }
        if !any_selected {
            break; // pool exhausted without progress: survivors stay live
        }
    }

    let sessions = if selected.is_empty() {
        Vec::new()
    } else {
        vec![selected]
    };
    Ok(GeneratedTests {
        sessions,
        killed,
        rounds,
    })
}

/// Greedy cover over candidate subsequences applied from reset
/// (sequential).
fn sequential(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    config: &MgConfig,
) -> Result<GeneratedTests, MutationError> {
    let info = checked.entity_info(entity).expect("entity checked above");
    let mut rng = SplitMix64::new(config.seed);
    let mut killed = vec![false; mutants.len()];
    let mut sessions: Vec<TestSequence> = Vec::new();
    let mut rounds = 0usize;
    // Sequential pools are smaller: each candidate costs subseq_len steps.
    let pool_count = (config.pool_size / 4).max(4);

    while killed.iter().any(|&k| !k) && rounds < config.max_rounds {
        rounds += 1;
        let pool: Vec<TestSequence> = (0..pool_count)
            .map(|_| random_sequence(info, config.subseq_len, rng.next_u64()))
            .collect();

        let live: Vec<usize> = (0..mutants.len()).filter(|&i| !killed[i]).collect();
        // first_kill[mutant_slot][candidate]: both engines grade every
        // (live mutant, candidate) pair from reset; the lane engine
        // batches 63 live mutants per candidate pass.
        let first_kill: Vec<Vec<Option<usize>>> = match config.engine {
            Engine::Scalar => {
                let references: Vec<Vec<Vec<Bits>>> = pool
                    .iter()
                    .map(|s| reference_transcript(checked, entity, s))
                    .collect::<Result<_, _>>()?;
                let mut first_kill = Vec::with_capacity(live.len());
                for &mi in &live {
                    let row: Vec<Option<usize>> = pool
                        .iter()
                        .zip(&references)
                        .map(|(candidate, reference)| {
                            run_one(checked, entity, &mutants[mi], candidate, reference)
                        })
                        .collect::<Result<_, _>>()?;
                    first_kill.push(row);
                }
                first_kill
            }
            Engine::Lanes => {
                // One `LanePlan` per round: the live subset's lane
                // groups compile once and grade the whole candidate
                // pool (the pre-cache path recompiled per candidate).
                let subset: Vec<Mutant> =
                    live.iter().map(|&mi| mutants[mi].clone()).collect();
                let options = LaneOptions::default().with_opt(config.opt);
                let plan = LanePlan::new(checked, entity, &subset, &options)?;
                let mut first_kill = vec![Vec::with_capacity(pool.len()); live.len()];
                for candidate in &pool {
                    let (result, _) = plan.first_kills(candidate)?;
                    for (slot, row) in first_kill.iter_mut().enumerate() {
                        row.push(result.first_kill[slot]);
                    }
                }
                first_kill
            }
        };

        let mut live_mask: Vec<bool> = vec![true; live.len()];
        let mut any_selected = false;
        match config.selection {
            Selection::PerMutant => {
                // Each live mutant appends the first subsequence that
                // kills it, truncated right after its own first kill.
                for (slot, row) in first_kill.iter().enumerate() {
                    let hit = row
                        .iter()
                        .enumerate()
                        .find_map(|(c, k)| k.map(|t| (c, t)));
                    if let Some((c, t)) = hit {
                        sessions.push(pool[c][..=t].to_vec());
                        any_selected = true;
                        live_mask[slot] = false;
                        killed[live[slot]] = true;
                    }
                }
            }
            Selection::FirstCome => {
                // Accept whole subsequences, in generation order, whenever
                // they kill something still live.
                for c in 0..pool.len() {
                    let gain = first_kill
                        .iter()
                        .zip(&live_mask)
                        .filter(|(row, &alive)| alive && row[c].is_some())
                        .count();
                    if gain == 0 {
                        continue;
                    }
                    sessions.push(pool[c].clone());
                    any_selected = true;
                    for (slot, alive) in live_mask.iter_mut().enumerate() {
                        if *alive && first_kill[slot][c].is_some() {
                            *alive = false;
                            killed[live[slot]] = true;
                        }
                    }
                }
            }
            Selection::Greedy => loop {
                let mut best: Option<(usize, usize)> = None;
                for c in 0..pool.len() {
                    let gain = first_kill
                        .iter()
                        .zip(&live_mask)
                        .filter(|(row, &alive)| alive && row[c].is_some())
                        .count();
                    if gain > 0 && best.map(|(_, g)| gain > g).unwrap_or(true) {
                        best = Some((c, gain));
                    }
                }
                let Some((c, _)) = best else { break };
                // Truncate right after the last first-kill this candidate
                // contributes (all earlier kills are preserved).
                let cut = first_kill
                    .iter()
                    .zip(&live_mask)
                    .filter_map(|(row, &alive)| if alive { row[c] } else { None })
                    .max()
                    .expect("gain > 0 implies a kill")
                    + 1;
                sessions.push(pool[c][..cut].to_vec());
                any_selected = true;
                for (slot, alive) in live_mask.iter_mut().enumerate() {
                    if *alive && first_kill[slot][c].is_some_and(|t| t < cut) {
                        *alive = false;
                        killed[live[slot]] = true;
                    }
                }
            },
        }
        if !any_selected {
            break;
        }
    }

    Ok(GeneratedTests {
        sessions,
        killed,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::parse;
    use musa_mutation::{execute_mutants, generate_mutants, GenerateOptions, MutationOperator};

    fn checked(src: &str) -> CheckedDesign {
        CheckedDesign::new(parse(src).unwrap()).unwrap()
    }

    #[test]
    fn combinational_data_is_mutation_adequate() {
        let d = checked(
            "entity g is
               port(a : in bits(4); b : in bits(4); y : out bits(4); f : out bit);
             comb begin
               y <= a and b;
               f <= a < b;
             end;
             end;",
        );
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let result =
            mutation_guided_tests(&d, "g", &mutants, &MgConfig::default()).unwrap();
        // Verify adequacy independently: re-execute the emitted data.
        let mut confirmed = vec![false; mutants.len()];
        for session in &result.sessions {
            let kills = execute_mutants(&d, "g", &mutants, session).unwrap();
            for (i, k) in kills.first_kill.iter().enumerate() {
                if k.is_some() {
                    confirmed[i] = true;
                }
            }
        }
        for (i, (&claimed, &found)) in result.killed.iter().zip(&confirmed).enumerate() {
            assert_eq!(
                claimed, found,
                "kill claim mismatch on mutant {i}: {}",
                mutants[i].description
            );
        }
        // Random 4-bit data kills the overwhelming majority quickly.
        assert!(
            result.killed_count() * 10 >= mutants.len() * 8,
            "{}/{} killed",
            result.killed_count(),
            mutants.len()
        );
        assert!(result.total_len() > 0);
    }

    #[test]
    fn selection_modes_order_by_length() {
        let d = checked(
            "entity g is
               port(a : in bits(6); b : in bits(6); y : out bits(6));
             comb begin y <= a xor b; end;
             end;",
        );
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let with = |selection| {
            mutation_guided_tests(
                &d,
                "g",
                &mutants,
                &MgConfig {
                    selection,
                    ..MgConfig::default()
                },
            )
            .unwrap()
        };
        let per_mutant = with(Selection::PerMutant);
        let first_come = with(Selection::FirstCome);
        let greedy = with(Selection::Greedy);
        assert!(
            greedy.total_len() <= first_come.total_len(),
            "greedy {} vs first-come {}",
            greedy.total_len(),
            first_come.total_len()
        );
        assert!(
            first_come.total_len() <= per_mutant.total_len(),
            "first-come {} vs per-mutant {}",
            first_come.total_len(),
            per_mutant.total_len()
        );
        // Per-mutant data holds one witness per killed mutant.
        assert_eq!(per_mutant.total_len(), per_mutant.killed_count());
        // All modes kill comparably (same pools per seed).
        assert!(greedy.killed_count() <= per_mutant.killed_count() + 2);
    }

    #[test]
    fn sequential_sessions_start_from_reset_and_kill() {
        let d = checked(
            "entity t is
               port(clk : in bit; rst : in bit; en : in bit; q : out bits(3));
             signal c : bits(3);
             seq(clk) begin
               if rst = 1 then
                 c <= 0;
               elsif en = 1 then
                 c <= c + 1;
               end if;
             end;
             comb begin q <= c; end;
             end;",
        );
        let mutants = generate_mutants(&d, "t", &GenerateOptions::default());
        let result =
            mutation_guided_tests(&d, "t", &mutants, &MgConfig::fast(3)).unwrap();
        assert!(result.killed_count() > mutants.len() / 2);
        // Confirm claims session by session.
        let mut confirmed = vec![false; mutants.len()];
        for session in &result.sessions {
            let kills = execute_mutants(&d, "t", &mutants, session).unwrap();
            for (i, k) in kills.first_kill.iter().enumerate() {
                if k.is_some() {
                    confirmed[i] = true;
                }
            }
        }
        for (i, (&claimed, &found)) in result.killed.iter().zip(&confirmed).enumerate() {
            assert!(
                !claimed || found,
                "claimed kill not reproducible for mutant {i}"
            );
        }
    }

    #[test]
    fn lane_engine_generates_bit_identical_data() {
        // Transparent engine pick-up: the emitted sessions, kill claims
        // and round counts must match the scalar engine exactly, on both
        // the combinational and the sequential generator path.
        let cases = [
            (
                "entity g is
                   port(a : in bits(4); b : in bits(4); y : out bits(4); f : out bit);
                 comb begin
                   y <= a and b;
                   f <= a < b;
                 end;
                 end;",
                "g",
            ),
            (
                "entity t is
                   port(clk : in bit; rst : in bit; en : in bit; q : out bits(3));
                 signal c : bits(3);
                 seq(clk) begin
                   if rst = 1 then
                     c <= 0;
                   elsif en = 1 then
                     c <= c + 1;
                   end if;
                 end;
                 comb begin q <= c; end;
                 end;",
                "t",
            ),
        ];
        for (src, entity) in cases {
            let d = checked(src);
            let mutants = generate_mutants(&d, entity, &GenerateOptions::default());
            let scalar =
                mutation_guided_tests(&d, entity, &mutants, &MgConfig::fast(7)).unwrap();
            let lanes = mutation_guided_tests(
                &d,
                entity,
                &mutants,
                &MgConfig::fast(7).with_engine(Engine::Lanes),
            )
            .unwrap();
            assert_eq!(scalar.sessions, lanes.sessions, "{entity}: sessions differ");
            assert_eq!(scalar.killed, lanes.killed, "{entity}: kill claims differ");
            assert_eq!(scalar.rounds, lanes.rounds, "{entity}: rounds differ");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = checked(
            "entity g is port(a : in bits(4); y : out bits(4));
             comb begin y <= not a; end;
             end;",
        );
        let mutants = generate_mutants(&d, "g", &GenerateOptions::only(MutationOperator::Uod));
        let r1 = mutation_guided_tests(&d, "g", &mutants, &MgConfig::fast(5)).unwrap();
        let r2 = mutation_guided_tests(&d, "g", &mutants, &MgConfig::fast(5)).unwrap();
        assert_eq!(r1.sessions, r2.sessions);
        assert_eq!(r1.killed, r2.killed);
    }

    #[test]
    fn empty_mutant_list_yields_empty_data() {
        let d = checked(
            "entity g is port(a : in bit; y : out bit);
             comb begin y <= a; end;
             end;",
        );
        let result = mutation_guided_tests(&d, "g", &[], &MgConfig::fast(1)).unwrap();
        assert_eq!(result.total_len(), 0);
        assert_eq!(result.killed_count(), 0);
    }

    #[test]
    fn unknown_entity_errors() {
        let d = checked(
            "entity g is port(a : in bit; y : out bit);
             comb begin y <= a; end;
             end;",
        );
        assert!(mutation_guided_tests(&d, "zz", &[], &MgConfig::fast(1)).is_err());
    }
}
