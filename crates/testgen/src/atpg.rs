//! PODEM — deterministic ATPG for combinational stuck-at faults.
//!
//! Implements the classic Path-Oriented DEcision Making algorithm
//! (Goel 1981): decisions are made on primary inputs only, guided by an
//! objective/backtrace pair, with five-valued forward implication
//! (0, 1, X on the good and faulty planes; a good/faulty difference is
//! the textbook `D`/`D̄`). The search is complete — exhausting it proves
//! a fault untestable (redundant) — and bounded by a backtrack limit.
//!
//! Used by the paper-motivated E3 experiment: how much ATPG effort
//! remains after re-using validation data as the initial test set.

use musa_netlist::{Fault, FaultSite, GateKind, NetId, Netlist, Node, Pattern, Testability};

/// Three-valued logic on one plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trit {
    Zero,
    One,
    X,
}

impl Trit {
    fn from_bool(b: bool) -> Trit {
        if b {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    fn invert(self) -> Trit {
        match self {
            Trit::Zero => Trit::One,
            Trit::One => Trit::Zero,
            Trit::X => Trit::X,
        }
    }
}

/// A net value on both circuit planes: `good` / `faulty`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct V5 {
    good: Trit,
    faulty: Trit,
}

impl V5 {
    const XX: V5 = V5 {
        good: Trit::X,
        faulty: Trit::X,
    };

    fn is_d_or_dbar(self) -> bool {
        matches!(
            (self.good, self.faulty),
            (Trit::Zero, Trit::One) | (Trit::One, Trit::Zero)
        )
    }
}

/// Outcome of one PODEM run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodemResult {
    /// A detecting pattern was found (don't-cares filled with 0).
    Test(Pattern),
    /// The search space was exhausted: the fault is untestable
    /// (redundant logic).
    Untestable,
    /// The backtrack limit was hit before a verdict.
    Aborted,
}

/// Aggregate statistics of an ATPG campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AtpgStats {
    /// Faults given to PODEM.
    pub targeted: usize,
    /// Faults for which a test was generated.
    pub tested: usize,
    /// Faults proven untestable.
    pub untestable: usize,
    /// Faults aborted at the backtrack limit.
    pub aborted: usize,
    /// Total backtracks across all runs (the classic effort measure).
    pub backtracks: u64,
}

/// Runs PODEM on a single fault.
///
/// # Panics
///
/// Panics if the netlist is sequential — PODEM here targets the
/// combinational circuits of the paper's evaluation (full-scan handling
/// of sequential designs is the standard industrial recourse).
pub fn podem(nl: &Netlist, fault: &Fault, backtrack_limit: u64) -> (PodemResult, u64) {
    assert!(
        nl.is_combinational(),
        "PODEM targets combinational netlists"
    );
    let fanouts: Vec<Vec<NetId>> = nl.fanouts();
    let is_output: Vec<bool> = nl
        .nets()
        .map(|n| nl.outputs().contains(&n))
        .collect();
    let scoap = Testability::analyze(nl);
    let mut engine = Podem {
        nl,
        fault: *fault,
        values: vec![V5::XX; nl.net_count()],
        pi_assignment: vec![Trit::X; nl.inputs().len()],
        pi_index: nl
            .nets()
            .map(|n| nl.inputs().iter().position(|&p| p == n))
            .collect(),
        fanouts,
        is_output,
        scoap,
        backtracks: 0,
        limit: backtrack_limit,
    };
    let result = engine.run();
    (result, engine.backtracks)
}

/// Runs PODEM over a fault list with fault dropping: each generated test
/// is kept, and the drop set is left to the caller (fault simulation
/// gives better dropping than PODEM's own implications).
pub fn atpg_all(nl: &Netlist, faults: &[Fault], backtrack_limit: u64) -> (Vec<PodemResult>, AtpgStats) {
    let _trace = musa_trace::span("atpg");
    let mut stats = AtpgStats {
        targeted: faults.len(),
        ..AtpgStats::default()
    };
    let results: Vec<PodemResult> = faults
        .iter()
        .map(|fault| {
            let (result, backtracks) = podem(nl, fault, backtrack_limit);
            stats.backtracks += backtracks;
            match &result {
                PodemResult::Test(_) => stats.tested += 1,
                PodemResult::Untestable => stats.untestable += 1,
                PodemResult::Aborted => stats.aborted += 1,
            }
            result
        })
        .collect();
    musa_trace::count("atpg_targeted", stats.targeted as u64);
    musa_trace::count("atpg_backtracks", stats.backtracks);
    (results, stats)
}

struct Podem<'a> {
    nl: &'a Netlist,
    fault: Fault,
    values: Vec<V5>,
    pi_assignment: Vec<Trit>,
    /// net → Some(pi position) for primary inputs.
    pi_index: Vec<Option<usize>>,
    /// Fan-out adjacency (for the X-path check).
    fanouts: Vec<Vec<NetId>>,
    /// net → is primary output.
    is_output: Vec<bool>,
    /// SCOAP testability measures (backtrace guidance).
    scoap: Testability,
    backtracks: u64,
    limit: u64,
}

/// One entry of the PODEM decision stack.
struct Decision {
    pi: usize,
    value: bool,
    flipped: bool,
}

impl Podem<'_> {
    fn run(&mut self) -> PodemResult {
        let mut stack: Vec<Decision> = Vec::new();
        loop {
            self.imply();
            if self.detected() {
                let pattern = self
                    .pi_assignment
                    .iter()
                    .map(|&t| t == Trit::One)
                    .collect();
                return PodemResult::Test(pattern);
            }
            let next = self.objective().and_then(|(net, v)| self.backtrace(net, v));
            match next {
                Some((pi, value)) => {
                    self.pi_assignment[pi] = Trit::from_bool(value);
                    stack.push(Decision {
                        pi,
                        value,
                        flipped: false,
                    });
                }
                None => {
                    // Conflict: undo decisions until an unflipped one.
                    self.backtracks += 1;
                    if self.backtracks > self.limit {
                        return PodemResult::Aborted;
                    }
                    loop {
                        match stack.pop() {
                            Some(d) if !d.flipped => {
                                self.pi_assignment[d.pi] = Trit::from_bool(!d.value);
                                stack.push(Decision {
                                    pi: d.pi,
                                    value: !d.value,
                                    flipped: true,
                                });
                                break;
                            }
                            Some(d) => {
                                self.pi_assignment[d.pi] = Trit::X;
                            }
                            None => return PodemResult::Untestable,
                        }
                    }
                }
            }
        }
    }

    /// The net whose good-plane value activates the fault.
    fn activation_net(&self) -> NetId {
        match self.fault.site {
            FaultSite::Net(n) => n,
            FaultSite::Pin { gate, pin } => match self.nl.node(gate) {
                Node::Gate { inputs, .. } => inputs[pin as usize],
                Node::Dff { d, .. } => *d,
                _ => unreachable!("pin faults live on gates"),
            },
        }
    }

    /// Five-valued forward implication over the whole circuit.
    fn imply(&mut self) {
        // Sources.
        for net in self.nl.nets() {
            let v = match self.nl.node(net) {
                Node::Input => {
                    let t = self.pi_assignment[self.pi_index[net.0 as usize].unwrap()];
                    V5 { good: t, faulty: t }
                }
                Node::Const(b) => {
                    let t = Trit::from_bool(*b);
                    V5 { good: t, faulty: t }
                }
                _ => continue,
            };
            self.values[net.0 as usize] = self.with_stem_fault(net, v);
        }
        // Gates in topological order.
        for &g in self.nl.topo_order() {
            if let Node::Gate { kind, inputs } = self.nl.node(g) {
                let good_inputs: Vec<Trit> = inputs
                    .iter()
                    .map(|&i| self.values[i.0 as usize].good)
                    .collect();
                let faulty_inputs: Vec<Trit> = inputs
                    .iter()
                    .enumerate()
                    .map(|(pin, &i)| {
                        if let FaultSite::Pin { gate, pin: fp } = self.fault.site {
                            if gate == g && fp == pin as u32 {
                                return Trit::from_bool(self.fault.stuck_at_one);
                            }
                        }
                        self.values[i.0 as usize].faulty
                    })
                    .collect();
                let v = V5 {
                    good: eval_gate(*kind, &good_inputs),
                    faulty: eval_gate(*kind, &faulty_inputs),
                };
                self.values[g.0 as usize] = self.with_stem_fault(g, v);
            }
        }
    }

    /// Applies a stem (net) fault to the faulty plane.
    fn with_stem_fault(&self, net: NetId, v: V5) -> V5 {
        if let FaultSite::Net(n) = self.fault.site {
            if n == net {
                return V5 {
                    good: v.good,
                    faulty: Trit::from_bool(self.fault.stuck_at_one),
                };
            }
        }
        v
    }

    fn detected(&self) -> bool {
        self.nl
            .outputs()
            .iter()
            .any(|&o| self.values[o.0 as usize].is_d_or_dbar())
    }

    /// Chooses the next (net, value) goal, or `None` on a conflict /
    /// empty D-frontier.
    fn objective(&self) -> Option<(NetId, bool)> {
        let site = self.activation_net();
        let site_good = match self.fault.site {
            FaultSite::Net(n) => self.values[n.0 as usize].good,
            FaultSite::Pin { .. } => self.values[site.0 as usize].good,
        };
        let want = !self.fault.stuck_at_one;
        match site_good {
            Trit::X => return Some((site, want)),
            t if t == Trit::from_bool(self.fault.stuck_at_one) => return None, // unactivatable here
            _ => {}
        }
        // Fault activated: advance the D-frontier. A gate is on the
        // frontier when its output is not yet a D and not fully
        // determined on both planes, while some *effective* input (pin
        // faults force their pin) already carries a good/faulty
        // difference.
        for net in self.nl.nets() {
            if let Node::Gate { kind, inputs } = self.nl.node(net) {
                let out = self.values[net.0 as usize];
                if out.is_d_or_dbar() {
                    continue;
                }
                if out.good != Trit::X && out.faulty != Trit::X {
                    continue;
                }
                let has_d = inputs.iter().enumerate().any(|(pin, &i)| {
                    let v = self.effective_input(net, pin as u32, i);
                    v.good != Trit::X && v.faulty != Trit::X && v.good != v.faulty
                });
                if !has_d {
                    continue;
                }
                // X-path check: the frontier gate must still have an
                // all-X corridor to some primary output, or propagating
                // through it is futile (prunes hopeless subtrees early).
                if !self.x_path_to_output(net) {
                    continue;
                }
                // Set an unassigned input to the non-controlling value.
                for &input in inputs {
                    if self.values[input.0 as usize].good == Trit::X {
                        let value = match kind.controlling_value() {
                            Some(c) => !c,
                            None => false, // XOR-family: any binding works
                        };
                        return Some((input, value));
                    }
                }
            }
        }
        None
    }

    /// DFS forward from `from` through nets undetermined on some plane
    /// to any primary output.
    fn x_path_to_output(&self, from: NetId) -> bool {
        let open = |net: NetId| {
            let v = self.values[net.0 as usize];
            v.good == Trit::X || v.faulty == Trit::X
        };
        if self.is_output[from.0 as usize] {
            return true;
        }
        let mut visited = vec![false; self.nl.net_count()];
        let mut stack = vec![from];
        visited[from.0 as usize] = true;
        while let Some(net) = stack.pop() {
            for &next in &self.fanouts[net.0 as usize] {
                if visited[next.0 as usize] || !open(next) {
                    continue;
                }
                if self.is_output[next.0 as usize] {
                    return true;
                }
                visited[next.0 as usize] = true;
                stack.push(next);
            }
        }
        false
    }

    /// The value a gate sees on one input pin, accounting for a pin
    /// fault forcing the faulty plane.
    fn effective_input(&self, gate: NetId, pin: u32, src: NetId) -> V5 {
        let mut v = self.values[src.0 as usize];
        if let FaultSite::Pin { gate: fg, pin: fp } = self.fault.site {
            if fg == gate && fp == pin {
                v.faulty = Trit::from_bool(self.fault.stuck_at_one);
            }
        }
        v
    }

    /// Maps an internal objective to a primary-input assignment.
    fn backtrace(&self, mut net: NetId, mut value: bool) -> Option<(usize, bool)> {
        loop {
            match self.nl.node(net) {
                Node::Input => {
                    let pi = self.pi_index[net.0 as usize].unwrap();
                    if self.pi_assignment[pi] != Trit::X {
                        return None; // already bound: conflict
                    }
                    return Some((pi, value));
                }
                Node::Const(_) | Node::Dff { .. } => return None,
                Node::Gate { kind, inputs } => {
                    if kind.is_inverting() {
                        value = !value;
                    }
                    // Among inputs unassigned on the good plane, follow
                    // the cheapest one for the wanted value (SCOAP):
                    // standard "easiest" backtrace.
                    let next = inputs
                        .iter()
                        .filter(|&&i| self.values[i.0 as usize].good == Trit::X)
                        .min_by_key(|&&i| {
                            if value {
                                self.scoap.cc1(i)
                            } else {
                                self.scoap.cc0(i)
                            }
                        });
                    match next {
                        Some(&i) => net = i,
                        None => return None,
                    }
                }
            }
        }
    }
}

/// Three-valued gate evaluation with controlling-value short-circuits.
fn eval_gate(kind: GateKind, inputs: &[Trit]) -> Trit {
    match kind {
        GateKind::Not => inputs[0].invert(),
        GateKind::Buf => inputs[0],
        GateKind::And | GateKind::Nand => {
            let base = if inputs.contains(&Trit::Zero) {
                Trit::Zero
            } else if inputs.iter().all(|&t| t == Trit::One) {
                Trit::One
            } else {
                Trit::X
            };
            if kind == GateKind::Nand {
                base.invert()
            } else {
                base
            }
        }
        GateKind::Or | GateKind::Nor => {
            let base = if inputs.contains(&Trit::One) {
                Trit::One
            } else if inputs.iter().all(|&t| t == Trit::Zero) {
                Trit::Zero
            } else {
                Trit::X
            };
            if kind == GateKind::Nor {
                base.invert()
            } else {
                base
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            if inputs.contains(&Trit::X) {
                Trit::X
            } else {
                let parity = inputs.iter().filter(|&&t| t == Trit::One).count() % 2 == 1;
                let base = Trit::from_bool(parity);
                if kind == GateKind::Xnor {
                    base.invert()
                } else {
                    base
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_netlist::{collapsed_faults, fault_simulate, parse_bench, C17};

    #[test]
    fn c17_all_faults_get_tests() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        let (results, stats) = atpg_all(&nl, &faults, 1000);
        assert_eq!(stats.tested, faults.len(), "c17 has no redundant faults");
        assert_eq!(stats.untestable, 0);
        assert_eq!(stats.aborted, 0);
        // Every generated pattern actually detects its fault.
        for (fault, result) in faults.iter().zip(&results) {
            let PodemResult::Test(pattern) = result else {
                panic!("expected test");
            };
            let sim = fault_simulate(&nl, &[*fault], std::slice::from_ref(pattern));
            assert_eq!(
                sim.detected_count(),
                1,
                "pattern misses {}",
                fault.describe(&nl)
            );
        }
    }

    #[test]
    fn redundant_fault_is_proven_untestable() {
        // y = OR(a, AND(a, b)) ≡ a: the AND output s-a-0 is undetectable.
        let mut nl = Netlist::new("redundant");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate("g", GateKind::And, vec![a, b]);
        let y = nl.add_gate("y", GateKind::Or, vec![a, g]);
        nl.mark_output(y);
        let nl = nl.freeze().unwrap();
        let fault = Fault::net_sa0(g);
        let (result, _) = podem(&nl, &fault, 1000);
        assert_eq!(result, PodemResult::Untestable);
        // The same net s-a-1 *is* testable (a=0, b=anything… a=0,b=? AND=0
        // normally; s-a-1 makes y=1 while good y=0).
        let fault = Fault::net_sa1(g);
        let (result, _) = podem(&nl, &fault, 1000);
        assert!(matches!(result, PodemResult::Test(_)));
    }

    #[test]
    fn tiny_backtrack_limit_aborts_or_solves() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        let (_, stats) = atpg_all(&nl, &faults, 0);
        // With zero allowed backtracks some faults may still be solved
        // (no conflicts), but nothing may be misclassified untestable.
        assert_eq!(stats.untestable, 0);
        assert_eq!(stats.tested + stats.aborted, faults.len());
    }

    #[test]
    fn pin_fault_gets_a_valid_test() {
        // Fanout makes pin faults distinct from stems.
        let mut nl = Netlist::new("pins");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y1 = nl.add_gate("y1", GateKind::And, vec![a, b]);
        let y2 = nl.add_gate("y2", GateKind::Or, vec![a, b]);
        nl.mark_output(y1);
        nl.mark_output(y2);
        let nl = nl.freeze().unwrap();
        let fault = Fault {
            site: FaultSite::Pin {
                gate: nl.net_by_name("y1").unwrap(),
                pin: 0,
            },
            stuck_at_one: false,
        };
        let (result, _) = podem(&nl, &fault, 1000);
        let PodemResult::Test(pattern) = result else {
            panic!("pin fault must be testable, got {result:?}");
        };
        let sim = fault_simulate(&nl, &[fault], &[pattern]);
        assert_eq!(sim.detected_count(), 1);
    }

    #[test]
    fn xor_circuit_tests_generate() {
        let mut nl = Netlist::new("xor");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let x1 = nl.add_gate("x1", GateKind::Xor, vec![a, b]);
        let x2 = nl.add_gate("x2", GateKind::Xor, vec![x1, c]);
        nl.mark_output(x2);
        let nl = nl.freeze().unwrap();
        let faults = collapsed_faults(&nl);
        let (results, stats) = atpg_all(&nl, &faults, 1000);
        assert_eq!(stats.tested, faults.len());
        for (fault, result) in faults.iter().zip(&results) {
            let PodemResult::Test(pattern) = result else {
                panic!()
            };
            let sim = fault_simulate(&nl, &[*fault], std::slice::from_ref(pattern));
            assert_eq!(sim.detected_count(), 1, "{}", fault.describe(&nl));
        }
    }

    #[test]
    #[should_panic(expected = "combinational")]
    fn sequential_netlist_rejected() {
        let nl = parse_bench(
            "INPUT(en)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, en)\n",
            "seq",
        )
        .unwrap();
        let q = nl.net_by_name("q").unwrap();
        let _ = podem(&nl, &Fault::net_sa0(q), 10);
    }
}
