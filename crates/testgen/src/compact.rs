//! Static test-set compaction (reverse-order restoration).
//!
//! Validation data admitted first-come carries redundancy: a vector
//! admitted early for an easy mutant is often subsumed by later vectors
//! admitted for hard ones. The classic remedy walks the test set in
//! *reverse* order, tentatively dropping each element and keeping the
//! drop whenever the kill set does not shrink.
//!
//! Compaction trades generation-time effort for shorter test data — the
//! same trade the paper's ΔL% metric prices.

use musa_hdl::CheckedDesign;
use musa_mutation::{execute_mutants, Mutant, MutationError, TestSequence};

/// Result of a compaction pass.
#[derive(Debug, Clone)]
pub struct CompactionOutcome {
    /// The surviving sessions, in original order.
    pub sessions: Vec<TestSequence>,
    /// Vectors before compaction.
    pub before: usize,
    /// Vectors after compaction.
    pub after: usize,
}

impl CompactionOutcome {
    /// Fraction of vectors removed.
    pub fn reduction(&self) -> f64 {
        if self.before == 0 {
            0.0
        } else {
            1.0 - self.after as f64 / self.before as f64
        }
    }
}

/// Kills achieved by a session set: the set of mutant indices killed by
/// at least one session.
fn killed_set(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    sessions: &[TestSequence],
) -> Result<Vec<bool>, MutationError> {
    let mut killed = vec![false; mutants.len()];
    for session in sessions {
        let result = execute_mutants(checked, entity, mutants, session)?;
        for (i, kill) in result.first_kill.iter().enumerate() {
            if kill.is_some() {
                killed[i] = true;
            }
        }
    }
    Ok(killed)
}

/// Reverse-order session compaction: drops whole sessions whose removal
/// keeps every currently-killed mutant killed.
///
/// # Errors
///
/// Propagates [`MutationError`] when a mutant does not belong to the
/// design.
pub fn compact_sessions(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    sessions: &[TestSequence],
) -> Result<CompactionOutcome, MutationError> {
    let before: usize = sessions.iter().map(|s| s.len()).sum();
    let reference = killed_set(checked, entity, mutants, sessions)?;
    let mut kept: Vec<TestSequence> = sessions.to_vec();
    let mut index = kept.len();
    while index > 0 {
        index -= 1;
        let candidate = kept.remove(index);
        let killed = killed_set(checked, entity, mutants, &kept)?;
        if killed != reference {
            kept.insert(index, candidate);
        }
    }
    let after: usize = kept.iter().map(|s| s.len()).sum();
    Ok(CompactionOutcome {
        sessions: kept,
        before,
        after,
    })
}

/// Reverse-order *vector* compaction for combinational data (a single
/// session whose vectors are order-independent).
///
/// # Errors
///
/// Propagates [`MutationError`] when a mutant does not belong to the
/// design.
pub fn compact_vectors(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
    session: &TestSequence,
) -> Result<CompactionOutcome, MutationError> {
    let as_sessions: Vec<TestSequence> = session.iter().map(|v| vec![v.clone()]).collect();
    let outcome = compact_sessions(checked, entity, mutants, &as_sessions)?;
    let merged: TestSequence = outcome.sessions.into_iter().flatten().collect();
    Ok(CompactionOutcome {
        before: outcome.before,
        after: merged.len(),
        sessions: vec![merged],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation_guided::{mutation_guided_tests, MgConfig};
    use musa_hdl::parse;
    use musa_mutation::{generate_mutants, GenerateOptions};

    fn checked(src: &str) -> CheckedDesign {
        CheckedDesign::new(parse(src).unwrap()).unwrap()
    }

    const COMB: &str = "
        entity g is
          port(a : in bits(5); b : in bits(5); y : out bits(5); f : out bit);
        comb begin
          y <= (a and b) + 1;
          f <= a < b;
        end;
        end;
    ";

    #[test]
    fn compaction_preserves_kills_and_never_grows() {
        let d = checked(COMB);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let generated =
            mutation_guided_tests(&d, "g", &mutants, &MgConfig::fast(0xC0)).unwrap();
        let before_kills = killed_set(&d, "g", &mutants, &generated.sessions).unwrap();
        let outcome =
            compact_vectors(&d, "g", &mutants, &generated.sessions[0]).unwrap();
        assert!(outcome.after <= outcome.before);
        let after_kills = killed_set(&d, "g", &mutants, &outcome.sessions).unwrap();
        assert_eq!(before_kills, after_kills, "compaction must not lose kills");
    }

    #[test]
    fn redundant_duplicates_are_removed() {
        let d = checked(COMB);
        let mutants = generate_mutants(&d, "g", &GenerateOptions::default());
        let generated =
            mutation_guided_tests(&d, "g", &mutants, &MgConfig::fast(0xC1)).unwrap();
        // Duplicate every vector: compaction must strip at least the copies.
        let mut doubled = generated.sessions[0].clone();
        doubled.extend(generated.sessions[0].clone());
        let outcome = compact_vectors(&d, "g", &mutants, &doubled).unwrap();
        assert!(
            outcome.after <= generated.sessions[0].len(),
            "{} vectors survived from {} doubled",
            outcome.after,
            doubled.len()
        );
        assert!(outcome.reduction() >= 0.5 - 1e-9);
    }

    #[test]
    fn sequential_sessions_compact() {
        let src = "
            entity t is
              port(clk : in bit; rst : in bit; en : in bit; q : out bits(3));
            signal c : bits(3);
            seq(clk) begin
              if rst = 1 then
                c <= 0;
              elsif en = 1 then
                c <= c + 1;
              end if;
            end;
            comb begin q <= c; end;
            end;
        ";
        let d = checked(src);
        let mutants = generate_mutants(&d, "t", &GenerateOptions::default());
        let generated =
            mutation_guided_tests(&d, "t", &mutants, &MgConfig::fast(0xC2)).unwrap();
        let reference = killed_set(&d, "t", &mutants, &generated.sessions).unwrap();
        let outcome =
            compact_sessions(&d, "t", &mutants, &generated.sessions).unwrap();
        let after = killed_set(&d, "t", &mutants, &outcome.sessions).unwrap();
        assert_eq!(reference, after);
        assert!(outcome.after <= outcome.before);
    }

    #[test]
    fn empty_input_is_a_noop() {
        let d = checked(COMB);
        let outcome = compact_sessions(&d, "g", &[], &[]).unwrap();
        assert_eq!(outcome.before, 0);
        assert_eq!(outcome.after, 0);
        assert_eq!(outcome.reduction(), 0.0);
    }
}
