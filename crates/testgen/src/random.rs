//! Pseudo-random test generation — the paper's baseline.
//!
//! Paper §3 compares mutation-generated validation data with "pseudo-
//! random test sets generally used as initial test sets before to run an
//! Automatic Test Pattern Generation". Two sources are provided:
//!
//! * [`random_sequence`] — behavioral-level vectors (software PRNG);
//! * [`lfsr_patterns`] — gate-level patterns from a maximal-length LFSR,
//!   the classic hardware pattern generator.

use musa_hdl::{Bits, EntityInfo};
use musa_netlist::Pattern;
use musa_prng::{Lfsr, Prng, SplitMix64};

/// Probability (as `1/RESET_SPARSITY`) of a reset-like input being
/// asserted on any given cycle.
///
/// Uniformly toggling a reset wipes sequential state every other cycle;
/// every practical testbench pulses it sparsely instead. The same
/// convention is applied to mutation candidates, the pseudo-random
/// baseline and equivalence classification, keeping comparisons fair.
pub const RESET_SPARSITY: u64 = 16;

/// Generates `len` pseudo-random input vectors for an entity.
///
/// Inputs follow the testbench convention: uniform bits, except
/// reset-like ports (see [`EntityInfo::reset_like`]) which are asserted
/// with probability `1/`[`RESET_SPARSITY`].
pub fn random_sequence(info: &EntityInfo, len: usize, seed: u64) -> Vec<Vec<Bits>> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| {
            info.data_inputs
                .iter()
                .map(|&p| {
                    let w = info.symbol(p).width;
                    if info.reset_like(p) {
                        Bits::new(1, u64::from(rng.below(RESET_SPARSITY) == 0))
                    } else {
                        Bits::new(w, rng.bits(w))
                    }
                })
                .collect()
        })
        .collect()
}

/// Generates `len` gate-level patterns from a maximal-length LFSR, one
/// register step per pattern (the hardware TPG discipline).
///
/// # Panics
///
/// Panics if `num_inputs` is 0 or exceeds 64.
pub fn lfsr_patterns(num_inputs: usize, len: usize, seed: u64) -> Vec<Pattern> {
    assert!(
        (1..=64).contains(&num_inputs),
        "LFSR pattern source supports 1..=64 inputs"
    );
    // Give the register a few spare stages so short-input circuits still
    // see a long period.
    let width = (num_inputs as u32 + 4).clamp(8, 64);
    let seed = SplitMix64::new(seed).next_u64() | 1; // non-zero
    let mut lfsr = Lfsr::new(width, seed).expect("valid width and non-zero seed");
    (0..len)
        .map(|_| {
            lfsr.step();
            let state = lfsr.state();
            (0..num_inputs).map(|i| (state >> i) & 1 == 1).collect()
        })
        .collect()
}

/// Generates `len` gate-level patterns from a software PRNG (used where
/// pattern independence matters more than hardware realism).
pub fn random_patterns(num_inputs: usize, len: usize, seed: u64) -> Vec<Pattern> {
    let mut rng = SplitMix64::new(seed);
    (0..len)
        .map(|_| (0..num_inputs).map(|_| rng.next_u64() & 1 == 1).collect())
        .collect()
}

/// Gate-level pseudo-random baseline with the testbench reset
/// convention: bits come from a maximal-length LFSR, except inputs whose
/// name marks them as a reset (`reset`/`rst`, or the synthesized
/// `reset_0`/`rst_0` bit names), which are asserted with probability
/// `1/`[`RESET_SPARSITY`].
///
/// # Panics
///
/// Panics if the netlist has no or more than 64 inputs.
pub fn testbench_patterns(
    nl: &musa_netlist::Netlist,
    len: usize,
    seed: u64,
) -> Vec<Pattern> {
    let num_inputs = nl.inputs().len();
    let reset_mask: Vec<bool> = nl
        .inputs()
        .iter()
        .map(|&net| {
            let lower = nl.net_name(net).to_ascii_lowercase();
            lower == "reset"
                || lower == "rst"
                || lower.starts_with("reset_")
                || lower.starts_with("rst_")
        })
        .collect();
    let mut base = lfsr_patterns(num_inputs, len, seed);
    let mut rng = SplitMix64::new(SplitMix64::new(seed).next_u64());
    for pattern in &mut base {
        for (bit, &is_reset) in pattern.iter_mut().zip(&reset_mask) {
            if is_reset {
                *bit = rng.below(RESET_SPARSITY) == 0;
            }
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::{parse, CheckedDesign};

    #[test]
    fn random_sequence_matches_port_widths() {
        let checked = CheckedDesign::new(
            parse(
                "entity e is port(a : in bits(5); b : in bit; y : out bit);
                 comb begin y <= orr(a) and b; end;
                 end;",
            )
            .unwrap(),
        )
        .unwrap();
        let info = checked.entity_info("e").unwrap();
        let seq = random_sequence(info, 20, 42);
        assert_eq!(seq.len(), 20);
        for vector in &seq {
            assert_eq!(vector.len(), 2);
            assert_eq!(vector[0].width(), 5);
            assert_eq!(vector[1].width(), 1);
        }
    }

    #[test]
    fn random_sequence_is_seed_deterministic() {
        let checked = CheckedDesign::new(
            parse(
                "entity e is port(a : in bits(8); y : out bits(8));
                 comb begin y <= a; end;
                 end;",
            )
            .unwrap(),
        )
        .unwrap();
        let info = checked.entity_info("e").unwrap();
        assert_eq!(random_sequence(info, 10, 7), random_sequence(info, 10, 7));
        assert_ne!(random_sequence(info, 10, 7), random_sequence(info, 10, 8));
    }

    #[test]
    fn lfsr_patterns_have_the_right_shape() {
        let patterns = lfsr_patterns(41, 100, 1);
        assert_eq!(patterns.len(), 100);
        assert!(patterns.iter().all(|p| p.len() == 41));
        // A maximal LFSR never repeats within a short window.
        assert_ne!(patterns[0], patterns[1]);
    }

    #[test]
    fn lfsr_patterns_are_balanced_enough() {
        let patterns = lfsr_patterns(16, 2000, 3);
        let ones: usize = patterns.iter().flatten().filter(|&&b| b).count();
        let total = 16 * 2000;
        let ratio = ones as f64 / total as f64;
        assert!((0.45..0.55).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn lfsr_rejects_zero_inputs() {
        let _ = lfsr_patterns(0, 10, 1);
    }

    #[test]
    fn random_patterns_deterministic() {
        assert_eq!(random_patterns(8, 50, 5), random_patterns(8, 50, 5));
        assert_ne!(random_patterns(8, 50, 5), random_patterns(8, 50, 6));
    }
}
