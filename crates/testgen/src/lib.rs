//! # musa-testgen — test data generation and mutant sampling
//!
//! Everything the DATE'05 flow needs to *produce* test data:
//!
//! * [`random_sequence`] / [`lfsr_patterns`] — the pseudo-random baseline
//!   (paper §3);
//! * [`mutation_guided_tests`] — mutation-adequate validation data:
//!   vectors are kept only when they kill live mutants (paper §2);
//! * [`SamplingStrategy`] / [`sample_mutants`] — classical random
//!   sampling versus the paper's test-oriented, efficiency-weighted
//!   sampling (paper §4);
//! * [`podem`] / [`atpg_all`] — a complete PODEM ATPG for the
//!   gate-level top-up experiment (paper §1 motivation, E3).
//!
//! # Example: sample 10 % of a mutant population two ways
//!
//! ```
//! use musa_hdl::{parse, CheckedDesign};
//! use musa_mutation::{generate_mutants, GenerateOptions, MutationOperator};
//! use musa_testgen::{sample_mutants, OperatorWeights, SamplingStrategy};
//!
//! let checked = CheckedDesign::new(parse(
//!     "entity g is port(a : in bits(4); b : in bits(4); y : out bits(4));
//!        comb begin y <= (a and b) + 1; end;
//!      end;",
//! )?)?;
//! let mutants = generate_mutants(&checked, "g", &GenerateOptions::default());
//!
//! let random = sample_mutants(&mutants, &SamplingStrategy::random(0.10), 42);
//! let weights = OperatorWeights::from_pairs([
//!     (MutationOperator::Cr, 480.0),
//!     (MutationOperator::Cvr, 450.0),
//!     (MutationOperator::Vr, 300.0),
//!     (MutationOperator::Lor, 7.0),
//! ]);
//! let oriented = sample_mutants(
//!     &mutants,
//!     &SamplingStrategy::test_oriented(0.10, weights),
//!     42,
//! );
//! assert_eq!(random.len(), oriented.len(), "same budget, different mix");
//! # Ok::<(), musa_hdl::HdlError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod atpg;
mod compact;
mod mutation_guided;
mod random;
mod sampling;

pub use atpg::{atpg_all, podem, AtpgStats, PodemResult};
pub use compact::{compact_sessions, compact_vectors, CompactionOutcome};
pub use mutation_guided::{mutation_guided_tests, GeneratedTests, MgConfig, Selection};
pub use random::{
    lfsr_patterns, random_patterns, random_sequence, testbench_patterns, RESET_SPARSITY,
};
pub use sampling::{sample_mutants, OperatorWeights, SamplingStrategy};
