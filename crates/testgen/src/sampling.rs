//! Mutant sampling strategies — the paper's §4 contribution.
//!
//! Both strategies select the **same total number** of mutants (a fixed
//! fraction of the population, 10 % in the paper):
//!
//! * [`SamplingStrategy::Random`] — the classical approach \[Offutt &
//!   Untch, *Mutation 2000*\]: a uniform sample of the whole population.
//! * [`SamplingStrategy::TestOriented`] — the paper's proposal:
//!   per-operator quotas proportional to each operator's stuck-at
//!   fault-coverage efficiency (its weight), so efficient operators
//!   (CR, CVR) contribute more mutants than inefficient ones (LOR).

use musa_mutation::{Mutant, MutationOperator};
use musa_prng::{Prng, SplitMix64};
use std::collections::HashMap;

/// Per-operator efficiency weights driving test-oriented sampling.
///
/// Weights are relative; only ratios matter. Operators absent from the
/// table default to weight 1. Non-positive weights are clamped to a
/// small epsilon so every operator keeps a nonzero chance of
/// representation (the paper still samples *some* LOR mutants).
#[derive(Debug, Clone, Default)]
pub struct OperatorWeights {
    weights: HashMap<MutationOperator, f64>,
}

impl OperatorWeights {
    /// Empty table: every operator weighs 1 (test-oriented sampling then
    /// degenerates to stratified uniform sampling).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table from `(operator, weight)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (MutationOperator, f64)>) -> Self {
        Self {
            weights: pairs.into_iter().collect(),
        }
    }

    /// Sets one operator's weight.
    pub fn set(&mut self, op: MutationOperator, weight: f64) {
        self.weights.insert(op, weight);
    }

    /// The effective (clamped) weight of an operator.
    pub fn weight(&self, op: MutationOperator) -> f64 {
        const EPSILON: f64 = 1e-3;
        self.weights.get(&op).copied().unwrap_or(1.0).max(EPSILON)
    }
}

/// How to pick the mutant subset.
#[derive(Debug, Clone)]
pub enum SamplingStrategy {
    /// Uniform sampling of `fraction` of the population.
    Random {
        /// Fraction of mutants to keep, in `(0, 1]`.
        fraction: f64,
    },
    /// Efficiency-weighted per-operator quotas, same total count.
    TestOriented {
        /// Fraction of mutants to keep, in `(0, 1]`.
        fraction: f64,
        /// Operator efficiency weights (e.g. NLFCE from an operator
        /// profile).
        weights: OperatorWeights,
    },
}

impl SamplingStrategy {
    /// The classical uniform strategy.
    pub fn random(fraction: f64) -> Self {
        SamplingStrategy::Random { fraction }
    }

    /// The paper's strategy with the given weights.
    pub fn test_oriented(fraction: f64, weights: OperatorWeights) -> Self {
        SamplingStrategy::TestOriented { fraction, weights }
    }

    /// The sampling fraction.
    pub fn fraction(&self) -> f64 {
        match self {
            SamplingStrategy::Random { fraction }
            | SamplingStrategy::TestOriented { fraction, .. } => *fraction,
        }
    }

    /// A short label for tables (`random` / `test-oriented`).
    pub fn label(&self) -> &'static str {
        match self {
            SamplingStrategy::Random { .. } => "random",
            SamplingStrategy::TestOriented { .. } => "test-oriented",
        }
    }
}

/// Selects mutant indices according to the strategy.
///
/// Both strategies return exactly `round(fraction × population)` indices
/// (at least 1 for a non-empty population), sorted ascending,
/// deterministically for a given seed.
///
/// # Panics
///
/// Panics if `fraction` is not within `(0, 1]`.
pub fn sample_mutants(mutants: &[Mutant], strategy: &SamplingStrategy, seed: u64) -> Vec<usize> {
    let fraction = strategy.fraction();
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "sampling fraction must be in (0, 1], got {fraction}"
    );
    if mutants.is_empty() {
        return Vec::new();
    }
    let k = ((mutants.len() as f64 * fraction).round() as usize)
        .clamp(1, mutants.len());
    let mut rng = SplitMix64::new(seed);
    match strategy {
        SamplingStrategy::Random { .. } => rng.sample_indices(mutants.len(), k),
        SamplingStrategy::TestOriented { weights, .. } => {
            weighted_quota_sample(mutants, weights, k, &mut rng)
        }
    }
}

/// Largest-remainder quota allocation followed by uniform sampling
/// within each operator class.
fn weighted_quota_sample(
    mutants: &[Mutant],
    weights: &OperatorWeights,
    k: usize,
    rng: &mut SplitMix64,
) -> Vec<usize> {
    // Group mutant indices by operator, in canonical operator order.
    let mut groups: Vec<(MutationOperator, Vec<usize>)> = MutationOperator::all()
        .into_iter()
        .map(|op| {
            (
                op,
                mutants
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.operator == op)
                    .map(|(i, _)| i)
                    .collect::<Vec<_>>(),
            )
        })
        .filter(|(_, g)| !g.is_empty())
        .collect();

    // Ideal (real-valued) quota per group: the share of the budget is
    // proportional to the operator's efficiency weight alone ("the
    // proportion of mutants selected from each operator is function of
    // its efficiency", paper §4) — capacity-capped, with redistribution.
    let total_mass: f64 = groups.iter().map(|(op, _)| weights.weight(*op)).sum();
    let mut quotas: Vec<usize> = Vec::with_capacity(groups.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(groups.len());
    let mut assigned = 0usize;
    for (gi, (op, group)) in groups.iter().enumerate() {
        let ideal = k as f64 * weights.weight(*op) / total_mass;
        let base = (ideal.floor() as usize).min(group.len());
        quotas.push(base);
        remainders.push((gi, ideal - base as f64));
        assigned += base;
    }
    // Distribute the remaining slots by largest remainder, respecting
    // group capacities.
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut cursor = 0usize;
    while assigned < k {
        let mut progressed = false;
        for _ in 0..remainders.len() {
            let (gi, _) = remainders[cursor % remainders.len()];
            cursor += 1;
            if quotas[gi] < groups[gi].1.len() {
                quotas[gi] += 1;
                assigned += 1;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break; // every group saturated (k > population; cannot happen)
        }
    }

    let mut selected = Vec::with_capacity(k);
    for (gi, (_, group)) in groups.iter_mut().enumerate() {
        let quota = quotas[gi];
        let picks = rng.sample_indices(group.len(), quota);
        selected.extend(picks.into_iter().map(|p| group[p]));
    }
    selected.sort_unstable();
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::{parse, CheckedDesign};
    use musa_mutation::{generate_mutants, GenerateOptions};

    fn population() -> Vec<Mutant> {
        let checked = CheckedDesign::new(
            parse(
                "entity p is
                   port(a : in bits(4); b : in bits(4); y : out bits(4); f : out bit);
                 constant K : bits(4) := 7;
                 comb begin
                   if a < K then
                     y <= a + b;
                   else
                     y <= a and b;
                   end if;
                   f <= not (a = b);
                 end;
                 end;",
            )
            .unwrap(),
        )
        .unwrap();
        generate_mutants(&checked, "p", &GenerateOptions::default())
    }

    #[test]
    fn both_strategies_select_same_count() {
        let mutants = population();
        let k_expected = ((mutants.len() as f64 * 0.10).round() as usize).max(1);
        let random = sample_mutants(&mutants, &SamplingStrategy::random(0.10), 1);
        let weights = OperatorWeights::from_pairs([
            (MutationOperator::Cr, 400.0),
            (MutationOperator::Cvr, 300.0),
            (MutationOperator::Vr, 100.0),
            (MutationOperator::Lor, 10.0),
        ]);
        let oriented =
            sample_mutants(&mutants, &SamplingStrategy::test_oriented(0.10, weights), 1);
        assert_eq!(random.len(), k_expected);
        assert_eq!(
            oriented.len(),
            k_expected,
            "the paper's strategy keeps the identical sample size"
        );
    }

    #[test]
    fn indices_are_sorted_unique_in_range() {
        let mutants = population();
        for strategy in [
            SamplingStrategy::random(0.25),
            SamplingStrategy::test_oriented(0.25, OperatorWeights::new()),
        ] {
            let sample = sample_mutants(&mutants, &strategy, 7);
            for w in sample.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(sample.iter().all(|&i| i < mutants.len()));
        }
    }

    #[test]
    fn heavier_operators_get_more_slots() {
        let mutants = population();
        let mut heavy_cr = OperatorWeights::new();
        heavy_cr.set(MutationOperator::Cr, 1000.0);
        heavy_cr.set(MutationOperator::Lor, 0.001);
        let cr_total = mutants
            .iter()
            .filter(|m| m.operator == MutationOperator::Cr)
            .count();
        assert!(cr_total > 0, "population must contain CR mutants");
        // Choose a budget smaller than the CR class so the dominant
        // weight can absorb the entire sample.
        let fraction = (cr_total as f64 / mutants.len() as f64) * 0.8;
        let oriented = sample_mutants(
            &mutants,
            &SamplingStrategy::test_oriented(fraction, heavy_cr),
            3,
        );
        let cr_sampled = oriented
            .iter()
            .filter(|&&i| mutants[i].operator == MutationOperator::Cr)
            .count();
        // All but at most one rounding slot must come from CR.
        assert!(
            cr_sampled + 1 >= oriented.len(),
            "cr_sampled={cr_sampled} of {} selected",
            oriented.len()
        );
    }

    #[test]
    fn uniform_weights_split_budget_evenly_across_operators() {
        let mutants = population();
        let oriented = sample_mutants(
            &mutants,
            &SamplingStrategy::test_oriented(0.5, OperatorWeights::new()),
            11,
        );
        // With unit weights every applicable operator class receives the
        // same budget share (up to capacity and redistribution).
        let applicable: Vec<MutationOperator> = MutationOperator::all()
            .into_iter()
            .filter(|&op| mutants.iter().any(|m| m.operator == op))
            .collect();
        let even_share = oriented.len() / applicable.len();
        for &op in &applicable {
            let capacity = mutants.iter().filter(|m| m.operator == op).count();
            let sampled = oriented
                .iter()
                .filter(|&&i| mutants[i].operator == op)
                .count();
            assert!(
                sampled >= even_share.min(capacity).saturating_sub(1),
                "{op}: {sampled} sampled, capacity {capacity}, share {even_share}"
            );
        }
    }

    #[test]
    fn full_fraction_selects_everything() {
        let mutants = population();
        let all = sample_mutants(&mutants, &SamplingStrategy::random(1.0), 5);
        assert_eq!(all.len(), mutants.len());
        let all = sample_mutants(
            &mutants,
            &SamplingStrategy::test_oriented(1.0, OperatorWeights::new()),
            5,
        );
        assert_eq!(all.len(), mutants.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let mutants = population();
        let s = SamplingStrategy::random(0.2);
        assert_eq!(sample_mutants(&mutants, &s, 9), sample_mutants(&mutants, &s, 9));
        assert_ne!(sample_mutants(&mutants, &s, 9), sample_mutants(&mutants, &s, 10));
    }

    #[test]
    fn empty_population_yields_empty_sample() {
        assert!(sample_mutants(&[], &SamplingStrategy::random(0.1), 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn zero_fraction_panics() {
        let mutants = population();
        let _ = sample_mutants(&mutants, &SamplingStrategy::random(0.0), 1);
    }

    #[test]
    fn weight_clamping() {
        let mut w = OperatorWeights::new();
        w.set(MutationOperator::Lor, -5.0);
        assert!(w.weight(MutationOperator::Lor) > 0.0);
        assert_eq!(w.weight(MutationOperator::Cr), 1.0);
    }

    #[test]
    fn labels() {
        assert_eq!(SamplingStrategy::random(0.1).label(), "random");
        assert_eq!(
            SamplingStrategy::test_oriented(0.1, OperatorWeights::new()).label(),
            "test-oriented"
        );
    }
}
