//! Conversions between behavioral [`Bits`] vectors and netlist patterns.
//!
//! The synthesis bit-order convention (see
//! [`elaborate`](crate::synthesize)): data-input ports in declaration
//! order, each contributing its bits LSB first; outputs likewise.

use musa_hdl::{Bits, EntityInfo};
use musa_netlist::Pattern;

/// Flattens one behavioral input vector into a netlist [`Pattern`].
///
/// # Panics
///
/// Panics if `inputs` does not match the entity's data-input ports.
pub fn flatten_inputs(info: &EntityInfo, inputs: &[Bits]) -> Pattern {
    assert_eq!(
        inputs.len(),
        info.data_inputs.len(),
        "expected {} input values",
        info.data_inputs.len()
    );
    let mut bits = Vec::with_capacity(info.input_bits() as usize);
    for (&port, value) in info.data_inputs.iter().zip(inputs) {
        let width = info.symbol(port).width;
        assert_eq!(value.width(), width, "width mismatch on input");
        for i in 0..width {
            bits.push(value.bit(i));
        }
    }
    bits
}

/// Flattens a whole behavioral input sequence.
pub fn flatten_sequence(info: &EntityInfo, sequence: &[Vec<Bits>]) -> Vec<Pattern> {
    sequence.iter().map(|v| flatten_inputs(info, v)).collect()
}

/// Rebuilds behavioral output values from a flat output bit pattern.
///
/// # Panics
///
/// Panics if the bit count does not match the entity's outputs.
pub fn unflatten_outputs(info: &EntityInfo, bits: &[bool]) -> Vec<Bits> {
    assert_eq!(
        bits.len(),
        info.output_bits() as usize,
        "output bit count mismatch"
    );
    let mut outputs = Vec::with_capacity(info.outputs.len());
    let mut cursor = 0usize;
    for &port in &info.outputs {
        let width = info.symbol(port).width;
        let mut raw = 0u64;
        for i in 0..width {
            if bits[cursor + i as usize] {
                raw |= 1 << i;
            }
        }
        cursor += width as usize;
        outputs.push(Bits::new(width, raw));
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::{parse, CheckedDesign};

    fn info() -> CheckedDesign {
        CheckedDesign::new(
            parse(
                "entity e is
                   port(a : in bits(3); b : in bit; y : out bits(2); z : out bit);
                 comb begin
                   y <= a[1:0];
                   z <= b;
                 end;
                 end;",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn flatten_orders_lsb_first() {
        let checked = info();
        let info = checked.entity_info("e").unwrap();
        let pattern = flatten_inputs(info, &[Bits::new(3, 0b101), Bits::new(1, 1)]);
        assert_eq!(pattern, vec![true, false, true, true]);
    }

    #[test]
    fn unflatten_inverts_flatten_convention() {
        let checked = info();
        let info = checked.entity_info("e").unwrap();
        let outs = unflatten_outputs(info, &[true, false, true]);
        assert_eq!(outs[0], Bits::new(2, 0b01));
        assert_eq!(outs[1], Bits::new(1, 1));
    }

    #[test]
    #[should_panic(expected = "input values")]
    fn flatten_rejects_wrong_arity() {
        let checked = info();
        let info = checked.entity_info("e").unwrap();
        let _ = flatten_inputs(info, &[Bits::new(3, 0)]);
    }

    #[test]
    fn flatten_sequence_maps_each_vector() {
        let checked = info();
        let info = checked.entity_info("e").unwrap();
        let seq = vec![
            vec![Bits::new(3, 0), Bits::new(1, 0)],
            vec![Bits::new(3, 7), Bits::new(1, 1)],
        ];
        let patterns = flatten_sequence(info, &seq);
        assert_eq!(patterns.len(), 2);
        assert_eq!(patterns[1], vec![true, true, true, true]);
    }
}
