//! # musa-synth — RTL synthesis from MiniHDL to gate-level netlists
//!
//! Elaborates a checked [`musa_hdl`] design into a [`musa_netlist`]
//! circuit: control flow becomes multiplexers, word operators expand to
//! ripple-carry adders, comparators and mux trees, loops unroll, and
//! clocked processes infer one D flip-flop per register bit. Local
//! constant folding and structural hashing keep the result compact.
//!
//! Correctness contract: for every vector sequence, the synthesized
//! netlist produces exactly the outputs of the behavioral simulator.
//! The test-suite enforces this by cross-simulation, including
//! property-based tests over random input sequences.
//!
//! # Example
//!
//! ```
//! use musa_hdl::{parse, Bits, CheckedDesign, Simulator};
//! use musa_netlist::{good_outputs, LogicSim};
//! use musa_synth::{flatten_inputs, synthesize, unflatten_outputs};
//!
//! let design = parse(
//!     "entity maj is
//!        port(a : in bit; b : in bit; c : in bit; y : out bit);
//!        comb begin y <= (a and b) or (a and c) or (b and c); end;
//!      end;",
//! )?;
//! let checked = CheckedDesign::new(design)?;
//! let nl = synthesize(&checked, "maj")?;
//!
//! // Gate-level and behavioral simulations agree.
//! let info = checked.entity_info("maj").unwrap();
//! let inputs = vec![Bits::new(1, 1), Bits::new(1, 0), Bits::new(1, 1)];
//! let mut behav = Simulator::new(&checked, "maj")?;
//! let expected = behav.step(&inputs);
//! let pattern = flatten_inputs(info, &inputs);
//! let gates = good_outputs(&nl, &[pattern]);
//! assert_eq!(unflatten_outputs(info, &gates[0]), expected);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod convert;
mod elaborate;

pub use builder::GateBuilder;
pub use convert::{flatten_inputs, flatten_sequence, unflatten_outputs};
pub use elaborate::{synthesize, SynthError};

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::{parse, Bits, CheckedDesign, Simulator};
    use musa_netlist::good_outputs;
    use musa_prng::{Prng, SplitMix64};

    /// Cross-simulates an entity behaviorally and at gate level over a
    /// random input sequence; asserts identical output transcripts.
    fn cross_check(src: &str, entity: &str, cycles: usize, seed: u64) {
        let checked = CheckedDesign::new(parse(src).unwrap()).unwrap();
        let nl = synthesize(&checked, entity).unwrap();
        let info = checked.entity_info(entity).unwrap();
        let mut rng = SplitMix64::new(seed);

        let sequence: Vec<Vec<Bits>> = (0..cycles)
            .map(|_| {
                info.data_inputs
                    .iter()
                    .map(|&p| {
                        let w = info.symbol(p).width;
                        Bits::new(w, rng.bits(w))
                    })
                    .collect()
            })
            .collect();

        let mut behav = Simulator::new(&checked, entity).unwrap();
        let expected = behav.run(&sequence);

        let patterns = flatten_sequence(info, &sequence);
        let gate_outs = good_outputs(&nl, &patterns);
        for (t, bits) in gate_outs.iter().enumerate() {
            let got = unflatten_outputs(info, bits);
            assert_eq!(got, expected[t], "cycle {t} of `{entity}` diverges");
        }
    }

    #[test]
    fn cross_check_combinational_alu() {
        cross_check(
            "entity alu is
               port(x : in bits(8); y : in bits(8); op : in bits(2); z : out bits(8); f : out bit);
             comb begin
               case op is
                 when 0 => z <= x + y;
                 when 1 => z <= x - y;
                 when 2 => z <= x and y;
                 when others => z <= x xor y;
               end case;
               f <= x < y;
             end;
             end;",
            "alu",
            200,
            0xA1,
        );
    }

    #[test]
    fn cross_check_multiplier() {
        cross_check(
            "entity mul is
               port(x : in bits(6); y : in bits(6); z : out bits(6));
             comb begin z <= x * y; end;
             end;",
            "mul",
            150,
            0xB2,
        );
    }

    #[test]
    fn cross_check_counter() {
        cross_check(
            "entity counter is
               port(clk : in bit; rst : in bit; en : in bit; q : out bits(5));
             signal c : bits(5);
             seq(clk) begin
               if rst = 1 then
                 c <= 0;
               elsif en = 1 then
                 c <= c + 1;
               end if;
             end;
             comb begin q <= c; end;
             end;",
            "counter",
            300,
            0xC3,
        );
    }

    #[test]
    fn cross_check_registered_output() {
        cross_check(
            "entity reg is
               port(clk : in bit; d : in bits(4); q : out bits(4));
             seq(clk) begin q <= d; end;
             end;",
            "reg",
            100,
            0xD4,
        );
    }

    #[test]
    fn cross_check_fsm_with_case() {
        cross_check(
            "entity fsm is
               port(clk : in bit; rst : in bit; x : in bit; y : out bit);
             signal state : bits(2);
             seq(clk) begin
               if rst = 1 then
                 state <= 0;
               else
                 case state is
                   when 0 => if x = 1 then state <= 1; end if;
                   when 1 => if x = 0 then state <= 2; else state <= 1; end if;
                   when 2 => state <= 3;
                   when others => state <= 0;
                 end case;
               end if;
             end;
             comb begin y <= state = 3; end;
             end;",
            "fsm",
            400,
            0xE5,
        );
    }

    #[test]
    fn cross_check_loops_and_dynamic_index() {
        cross_check(
            "entity bitops is
               port(a : in bits(8); s : in bits(3); y : out bits(8); o : out bit);
             comb begin
               for i in 0 .. 7 loop
                 y[i] <= a[7 - i];
               end loop;
               o <= a[s];
             end;
             end;",
            "bitops",
            200,
            0xF6,
        );
    }

    #[test]
    fn cross_check_dynamic_index_write() {
        cross_check(
            "entity setter is
               port(a : in bits(8); s : in bits(4); v : in bit; y : out bits(8));
             comb
               var t : bits(8);
             begin
               t := a;
               t[s] := v;
               y <= t;
             end;
             end;",
            "setter",
            200,
            0x17,
        );
    }

    #[test]
    fn cross_check_shift_concat_reduce() {
        cross_check(
            "entity srx is
               port(a : in bits(6); b : in bits(2); y : out bits(8); p : out bit; q : out bit; r : out bit);
             comb begin
               y <= (a & b) xor ((a & b) srl 3) xor ((a & b) sll 1);
               p <= xorr(a);
               q <= andr(b);
               r <= orr(a);
             end;
             end;",
            "srx",
            200,
            0x28,
        );
    }

    #[test]
    fn cross_check_variables_chain() {
        cross_check(
            "entity chain is
               port(a : in bits(8); y : out bits(8));
             constant BIAS : bits(8) := 37;
             comb
               var t : bits(8);
               var u : bits(8);
             begin
               t := a + BIAS;
               u := t * t;
               if u > 128 then
                 u := u - a;
               end if;
               y <= u;
             end;
             end;",
            "chain",
            200,
            0x39,
        );
    }

    #[test]
    fn cross_check_comparisons() {
        cross_check(
            "entity cmp is
               port(a : in bits(7); b : in bits(7);
                    l : out bit; le : out bit; g : out bit; ge : out bit;
                    e : out bit; n : out bit);
             comb begin
               l <= a < b; le <= a <= b; g <= a > b;
               ge <= a >= b; e <= a = b; n <= a /= b;
             end;
             end;",
            "cmp",
            300,
            0x4A,
        );
    }

    #[test]
    fn cross_check_two_seq_processes() {
        cross_check(
            "entity pair is
               port(clk : in bit; d : in bit; qa : out bit; qb : out bit);
             signal a : bit := 1;
             signal b : bit := 0;
             seq(clk) begin a <= b xor d; end;
             seq(clk) begin b <= a; end;
             comb begin qa <= a; qb <= b; end;
             end;",
            "pair",
            200,
            0x5B,
        );
    }

    #[test]
    fn cross_check_nonzero_register_init() {
        cross_check(
            "entity initreg is
               port(clk : in bit; q : out bits(4));
             signal r : bits(4) := 9;
             seq(clk) begin r <= r + 3; end;
             comb begin q <= r; end;
             end;",
            "initreg",
            50,
            0x6C,
        );
    }

    #[test]
    fn synthesize_unknown_entity_errors() {
        let checked = CheckedDesign::new(
            parse(
                "entity a is port(x : in bit; y : out bit);
                 comb begin y <= x; end;
                 end;",
            )
            .unwrap(),
        )
        .unwrap();
        assert!(matches!(
            synthesize(&checked, "zz"),
            Err(SynthError::EntityNotFound(_))
        ));
    }

    #[test]
    fn constant_folding_keeps_netlists_small() {
        // An unrolled loop over constants should fold to almost nothing.
        let checked = CheckedDesign::new(
            parse(
                "entity fold is
                   port(a : in bits(8); y : out bits(8));
                 comb
                   var t : bits(8);
                 begin
                   t := 0;
                   for i in 0 .. 7 loop
                     t := t xor 0;
                   end loop;
                   y <= t xor a;
                 end;
                 end;",
            )
            .unwrap(),
        )
        .unwrap();
        let nl = synthesize(&checked, "fold").unwrap();
        // y = 0 xor a = a: pure rewiring, no gates needed at all.
        assert_eq!(nl.gate_count(), 0, "constants must fold away");
    }
}
