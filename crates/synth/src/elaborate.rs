//! RTL elaboration: checked MiniHDL → gate-level netlist.
//!
//! The elaborator symbolically executes every process, mapping each
//! signal/port/variable to a vector of nets (LSB first). Control flow
//! becomes multiplexers, `for` loops unroll, word operators expand into
//! ripple-carry/mux-tree structures via [`GateBuilder`], and clocked
//! processes infer one D flip-flop per register bit.
//!
//! ## Bit-order convention
//!
//! Primary inputs appear in the netlist in *entity data-input declaration
//! order*, each port contributing its bits LSB first and named
//! `port_bit` (e.g. `count_3`). Outputs follow the same convention. The
//! [`flatten_inputs`](crate::flatten_inputs) /
//! [`unflatten_outputs`](crate::unflatten_outputs) helpers convert
//! between behavioral [`Bits`] vectors and netlist patterns.

use crate::builder::GateBuilder;
use musa_hdl::ast::*;
use musa_hdl::{CheckedDesign, DriveClass, EntityInfo, SymbolId, SymbolKind};
use musa_netlist::{NetId, Netlist, NetlistError};
use std::collections::HashMap;
use std::fmt;

/// Error during synthesis.
#[derive(Debug)]
pub enum SynthError {
    /// The design has no entity with the requested name.
    EntityNotFound(String),
    /// The produced netlist failed validation (internal error).
    Netlist(NetlistError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::EntityNotFound(name) => write!(f, "no entity named `{name}`"),
            SynthError::Netlist(e) => write!(f, "synthesized netlist invalid: {e}"),
        }
    }
}

impl std::error::Error for SynthError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SynthError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SynthError {
    fn from(e: NetlistError) -> Self {
        SynthError::Netlist(e)
    }
}

/// Synthesizes one entity of a checked design into a frozen [`Netlist`].
///
/// # Errors
///
/// Returns [`SynthError::EntityNotFound`] for an unknown entity name.
/// Internal netlist validation failures surface as
/// [`SynthError::Netlist`] (they indicate an elaborator bug, not bad
/// input — checked designs always elaborate).
///
/// # Examples
///
/// ```
/// use musa_hdl::{parse, CheckedDesign};
/// use musa_synth::synthesize;
///
/// let design = parse(
///     "entity inc is
///        port(a : in bits(4); y : out bits(4));
///        comb begin y <= a + 1; end;
///      end;",
/// )?;
/// let checked = CheckedDesign::new(design)?;
/// let nl = synthesize(&checked, "inc")?;
/// assert_eq!(nl.inputs().len(), 4);
/// assert_eq!(nl.outputs().len(), 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize(checked: &CheckedDesign, entity_name: &str) -> Result<Netlist, SynthError> {
    let (entity, info) = checked
        .entity(entity_name)
        .ok_or_else(|| SynthError::EntityNotFound(entity_name.to_string()))?;
    let mut elab = Elaborator {
        info,
        builder: GateBuilder::new(entity_name),
        env: HashMap::new(),
        dff_bits: HashMap::new(),
    };
    elab.run(entity)?;
    // Sweep dead logic (unread builder constants, folded-away cones) so
    // the fault universe has no unobservable-by-construction sites.
    Ok(elab.builder.finish().sweep_dead().freeze()?)
}

struct Elaborator<'a> {
    info: &'a EntityInfo,
    builder: GateBuilder,
    /// Current symbolic value of every symbol, LSB first.
    env: HashMap<SymbolId, Vec<NetId>>,
    /// Register symbol → flip-flop output nets.
    dff_bits: HashMap<SymbolId, Vec<NetId>>,
}

impl<'a> Elaborator<'a> {
    fn run(&mut self, entity: &Entity) -> Result<(), SynthError> {
        // 1. Primary inputs (data inputs only; clocks are implicit).
        for &port in &self.info.data_inputs {
            let sym = self.info.symbol(port);
            let bits: Vec<NetId> = (0..sym.width)
                .map(|i| {
                    self.builder
                        .netlist_mut()
                        .add_input(format!("{}_{i}", sym.name))
                })
                .collect();
            self.env.insert(port, bits);
        }
        // 2. Constants.
        for (i, sym) in self.info.symbols.iter().enumerate() {
            if let SymbolKind::Const(value) = sym.kind {
                let bits = self.builder.constant_word(sym.width, value);
                self.env.insert(SymbolId(i as u32), bits);
            }
        }
        // 2b. Undriven signals hold their initial value forever (they
        //     arise from SDL mutants deleting a sole register assignment).
        for (i, sym) in self.info.symbols.iter().enumerate() {
            let id = SymbolId(i as u32);
            if matches!(sym.kind, SymbolKind::Signal) && !self.info.drivers.contains_key(&id) {
                let bits = self.builder.constant_word(sym.width, sym.init);
                self.env.insert(id, bits);
            }
        }
        // 3. Registers: one flop per bit.
        for (i, sym) in self.info.symbols.iter().enumerate() {
            let id = SymbolId(i as u32);
            if self.info.drive_class.get(&id) == Some(&DriveClass::Register) {
                let bits: Vec<NetId> = (0..sym.width)
                    .map(|b| {
                        let init = (sym.init >> b) & 1 == 1;
                        self.builder
                            .netlist_mut()
                            .add_dff(format!("{}_{b}", sym.name), init)
                    })
                    .collect();
                self.dff_bits.insert(id, bits.clone());
                self.env.insert(id, bits);
            }
        }
        // 4. Combinational processes in dependency order. Driven wires are
        //    seeded with zeros so partial (bit/slice) assignments can
        //    read-modify-write; the checker's full-assignment guarantee
        //    ensures the seed never escapes.
        for &pidx in &self.info.comb_order {
            let process = &entity.processes[pidx];
            for (&sym, &driver) in &self.info.drivers {
                if driver == pidx && !self.env.contains_key(&sym) {
                    let width = self.info.symbol(sym).width;
                    let bits = self.builder.constant_word(width, 0);
                    self.env.insert(sym, bits);
                }
            }
            self.init_vars(process, pidx);
            let mut env = self.env.clone();
            self.exec_stmts(&process.body, &mut env);
            self.env = env;
        }
        // 5. Clocked processes: compute next-state and wire the flops.
        for &pidx in &self.info.seq_processes {
            let process = &entity.processes[pidx];
            self.init_vars(process, pidx);
            let mut env = self.env.clone();
            self.exec_stmts(&process.body, &mut env);
            for (&sym, dffs) in &self.dff_bits {
                if self.info.drivers.get(&sym) == Some(&pidx) {
                    let next = &env[&sym];
                    for (&ff, &d) in dffs.iter().zip(next) {
                        self.builder.netlist_mut().connect_dff(ff, d);
                    }
                }
            }
        }
        // 6. Outputs.
        for &port in &self.info.outputs {
            let bits = self.env[&port].clone();
            for bit in bits {
                self.builder.netlist_mut().mark_output(bit);
            }
        }
        Ok(())
    }

    fn init_vars(&mut self, process: &Process, pidx: usize) {
        let _ = process;
        for (i, sym) in self.info.symbols.iter().enumerate() {
            if let SymbolKind::Var { process: p } = sym.kind {
                if p == pidx {
                    let bits = self.builder.constant_word(sym.width, sym.init);
                    self.env.insert(SymbolId(i as u32), bits);
                }
            }
        }
    }

    fn exec_stmts(&mut self, stmts: &[Stmt], env: &mut HashMap<SymbolId, Vec<NetId>>) {
        for stmt in stmts {
            self.exec_stmt(stmt, env);
        }
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut HashMap<SymbolId, Vec<NetId>>) {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let sym = self.info.resolved[&target.id];
                let value_bits = self.expr_bits(value, env);
                match &target.sel {
                    None => {
                        env.insert(sym, value_bits);
                    }
                    Some(Select::Slice { hi: _, lo }) => {
                        let current = env[&sym].clone();
                        let mut next = current;
                        for (k, bit) in value_bits.into_iter().enumerate() {
                            next[*lo as usize + k] = bit;
                        }
                        env.insert(sym, next);
                    }
                    Some(Select::Index(index)) => {
                        let bit = value_bits[0];
                        if let Expr::Literal { value: i, .. } = index {
                            let mut next = env[&sym].clone();
                            next[*i as usize] = bit;
                            env.insert(sym, next);
                        } else {
                            let index_bits = self.expr_bits(index, env);
                            let current = env[&sym].clone();
                            let next: Vec<NetId> = current
                                .iter()
                                .enumerate()
                                .map(|(i, &old)| {
                                    let sel = self.builder.index_is(&index_bits, i as u64);
                                    self.builder.mux(sel, bit, old)
                                })
                                .collect();
                            env.insert(sym, next);
                        }
                    }
                }
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                self.exec_if(arms, else_body.as_deref(), env);
            }
            Stmt::Case {
                subject,
                arms,
                default,
                ..
            } => {
                let subject_bits = self.expr_bits(subject, env);
                // Lower to a prioritised if/elsif chain.
                self.exec_case(&subject_bits, arms, default.as_deref(), env);
            }
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                let loop_sym = self.find_loop_symbol(body, &var.name);
                for i in *lo..=*hi {
                    if let Some(sym) = loop_sym {
                        let width = self.info.symbol(sym).width;
                        let bits = self.builder.constant_word(width, i);
                        env.insert(sym, bits);
                    }
                    self.exec_stmts(body, env);
                }
            }
            Stmt::Null { .. } => {}
        }
    }

    fn exec_if(
        &mut self,
        arms: &[(Expr, Vec<Stmt>)],
        else_body: Option<&[Stmt]>,
        env: &mut HashMap<SymbolId, Vec<NetId>>,
    ) {
        let Some(((cond, body), rest)) = arms.split_first() else {
            if let Some(body) = else_body {
                self.exec_stmts(body, env);
            }
            return;
        };
        let cond_bit = self.expr_bits(cond, env)[0];
        let mut env_then = env.clone();
        self.exec_stmts(body, &mut env_then);
        let mut env_else = env.clone();
        self.exec_if(rest, else_body, &mut env_else);
        self.merge(cond_bit, env_then, env_else, env);
    }

    fn exec_case(
        &mut self,
        subject_bits: &[NetId],
        arms: &[CaseArm],
        default: Option<&[Stmt]>,
        env: &mut HashMap<SymbolId, Vec<NetId>>,
    ) {
        let Some((arm, rest)) = arms.split_first() else {
            if let Some(body) = default {
                self.exec_stmts(body, env);
            }
            return;
        };
        let mut cond = self.builder.zero();
        for &choice in &arm.choices {
            let hit = self.builder.index_is(subject_bits, choice);
            cond = self.builder.or(cond, hit);
        }
        let mut env_then = env.clone();
        self.exec_stmts(&arm.body, &mut env_then);
        let mut env_else = env.clone();
        self.exec_case(subject_bits, rest, default, &mut env_else);
        self.merge(cond, env_then, env_else, env);
    }

    /// Merges two branch environments through per-bit muxes.
    fn merge(
        &mut self,
        cond: NetId,
        env_then: HashMap<SymbolId, Vec<NetId>>,
        env_else: HashMap<SymbolId, Vec<NetId>>,
        env: &mut HashMap<SymbolId, Vec<NetId>>,
    ) {
        for (sym, then_bits) in env_then {
            // Symbols introduced inside one branch only (loop indices) are
            // dead after it; skip them.
            let Some(else_bits) = env_else.get(&sym) else {
                continue;
            };
            if then_bits == *else_bits {
                env.insert(sym, then_bits);
            } else {
                let merged: Vec<NetId> = then_bits
                    .iter()
                    .zip(else_bits)
                    .map(|(&t, &e)| self.builder.mux(cond, t, e))
                    .collect();
                env.insert(sym, merged);
            }
        }
    }

    fn find_loop_symbol(&self, body: &[Stmt], name: &str) -> Option<SymbolId> {
        let mut found = None;
        walk_exprs(body, &mut |e| {
            if found.is_some() {
                return;
            }
            if let Expr::Ref { id, name: n } = e {
                if n.name == name {
                    if let Some(&sym) = self.info.resolved.get(id) {
                        if matches!(self.info.symbol(sym).kind, SymbolKind::LoopVar) {
                            found = Some(sym);
                        }
                    }
                }
            }
        });
        found
    }

    fn expr_bits(&mut self, e: &Expr, env: &HashMap<SymbolId, Vec<NetId>>) -> Vec<NetId> {
        match e {
            Expr::Literal { id, value, .. } => {
                let width = self.info.widths[id];
                self.builder.constant_word(width, *value)
            }
            Expr::Ref { id, .. } => env[&self.info.resolved[id]].clone(),
            Expr::Index { base, index, .. } => {
                let base_bits = self.expr_bits(base, env);
                if let Expr::Literal { value, .. } = index.as_ref() {
                    vec![base_bits[*value as usize]]
                } else {
                    let index_bits = self.expr_bits(index, env);
                    vec![self.builder.dyn_index(&base_bits, &index_bits)]
                }
            }
            Expr::Slice { base, hi, lo, .. } => {
                let base_bits = self.expr_bits(base, env);
                base_bits[*lo as usize..=*hi as usize].to_vec()
            }
            Expr::Unary { op, arg, .. } => {
                let bits = self.expr_bits(arg, env);
                match op {
                    UnaryOp::Not => bits.iter().map(|&b| self.builder.not(b)).collect(),
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = self.expr_bits(lhs, env);
                let b = self.expr_bits(rhs, env);
                match op {
                    BinOp::And => self.zip2(&a, &b, |s, x, y| s.and(x, y)),
                    BinOp::Or => self.zip2(&a, &b, |s, x, y| s.or(x, y)),
                    BinOp::Xor => self.zip2(&a, &b, |s, x, y| s.xor(x, y)),
                    BinOp::Nand => self.zip2(&a, &b, |s, x, y| s.nand(x, y)),
                    BinOp::Nor => self.zip2(&a, &b, |s, x, y| s.nor(x, y)),
                    BinOp::Xnor => self.zip2(&a, &b, |s, x, y| s.xnor(x, y)),
                    BinOp::Add => self.builder.add_words(&a, &b),
                    BinOp::Sub => self.builder.sub_words(&a, &b),
                    BinOp::Mul => self.builder.mul_words(&a, &b),
                    BinOp::Eq => vec![self.builder.eq_words(&a, &b)],
                    BinOp::Ne => {
                        let eq = self.builder.eq_words(&a, &b);
                        vec![self.builder.not(eq)]
                    }
                    BinOp::Lt => vec![self.builder.lt_words(&a, &b)],
                    BinOp::Le => {
                        let gt = self.builder.lt_words(&b, &a);
                        vec![self.builder.not(gt)]
                    }
                    BinOp::Gt => vec![self.builder.lt_words(&b, &a)],
                    BinOp::Ge => {
                        let lt = self.builder.lt_words(&a, &b);
                        vec![self.builder.not(lt)]
                    }
                }
            }
            Expr::Reduce { op, arg, .. } => {
                let bits = self.expr_bits(arg, env);
                vec![match op {
                    ReduceOp::Or => self.builder.or_reduce(&bits),
                    ReduceOp::And => self.builder.and_reduce(&bits),
                    ReduceOp::Xor => self.builder.xor_reduce(&bits),
                }]
            }
            Expr::Concat { lhs, rhs, .. } => {
                // lhs = high bits, rhs = low bits; LSB-first storage.
                let high = self.expr_bits(lhs, env);
                let mut bits = self.expr_bits(rhs, env);
                bits.extend(high);
                bits
            }
            Expr::Shift { op, arg, amount, .. } => {
                let bits = self.expr_bits(arg, env);
                let w = bits.len();
                let k = *amount as usize;
                let zero = self.builder.zero();
                match op {
                    ShiftOp::Left => {
                        let mut out = vec![zero; w];
                        if k < w {
                            out[k..].copy_from_slice(&bits[..w - k]);
                        }
                        out
                    }
                    ShiftOp::Right => {
                        let mut out = vec![zero; w];
                        if k < w {
                            out[..w - k].copy_from_slice(&bits[k..]);
                        }
                        out
                    }
                }
            }
        }
    }

    fn zip2(
        &mut self,
        a: &[NetId],
        b: &[NetId],
        f: impl Fn(&mut GateBuilder, NetId, NetId) -> NetId,
    ) -> Vec<NetId> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| f(&mut self.builder, x, y))
            .collect()
    }
}
