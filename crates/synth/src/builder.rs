//! Gate builder with constant folding and structural hashing.
//!
//! Synthesis emits gates through [`GateBuilder`], which applies local
//! simplifications (constant propagation, double-negation removal,
//! idempotence) and hash-conses structurally identical gates so that
//! loop-unrolled datapaths do not explode the netlist.

use musa_netlist::{GateKind, NetId, Netlist};
use std::collections::HashMap;

/// Incrementally builds a [`Netlist`] out of two-input gates.
#[derive(Debug)]
pub struct GateBuilder {
    nl: Netlist,
    const0: Option<NetId>,
    const1: Option<NetId>,
    cache: HashMap<(GateKind, Vec<NetId>), NetId>,
    fresh: u32,
}

impl GateBuilder {
    /// Creates a builder for a circuit with the given name.
    pub fn new(name: &str) -> Self {
        Self {
            nl: Netlist::new(name),
            const0: None,
            const1: None,
            cache: HashMap::new(),
            fresh: 0,
        }
    }

    /// Access to the netlist under construction.
    pub fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.nl
    }

    /// Finishes construction.
    pub fn finish(self) -> Netlist {
        self.nl
    }

    fn fresh_name(&mut self) -> String {
        self.fresh += 1;
        format!("n{}", self.fresh)
    }

    /// The constant-0 net (created on first use).
    pub fn zero(&mut self) -> NetId {
        if let Some(c) = self.const0 {
            return c;
        }
        let c = self.nl.add_const("const0", false);
        self.const0 = Some(c);
        c
    }

    /// The constant-1 net (created on first use).
    pub fn one(&mut self) -> NetId {
        if let Some(c) = self.const1 {
            return c;
        }
        let c = self.nl.add_const("const1", true);
        self.const1 = Some(c);
        c
    }

    /// A constant bit.
    pub fn constant(&mut self, value: bool) -> NetId {
        if value {
            self.one()
        } else {
            self.zero()
        }
    }

    fn is_const(&self, net: NetId) -> Option<bool> {
        if Some(net) == self.const0 {
            Some(false)
        } else if Some(net) == self.const1 {
            Some(true)
        } else {
            None
        }
    }

    fn emit(&mut self, kind: GateKind, mut inputs: Vec<NetId>) -> NetId {
        // Symmetric gates: canonicalise input order for hashing.
        if !matches!(kind, GateKind::Not | GateKind::Buf) {
            inputs.sort_unstable();
        }
        if let Some(&hit) = self.cache.get(&(kind, inputs.clone())) {
            return hit;
        }
        let name = self.fresh_name();
        let id = self.nl.add_gate(name, kind, inputs.clone());
        self.cache.insert((kind, inputs), id);
        id
    }

    /// Inverter with folding (`!!x → x`, constants).
    pub fn not(&mut self, a: NetId) -> NetId {
        if let Some(v) = self.is_const(a) {
            return self.constant(!v);
        }
        // !!x → x.
        if let musa_netlist::Node::Gate { kind, inputs } = self.nl.node(a) {
            if *kind == GateKind::Not {
                return inputs[0];
            }
        }
        self.emit(GateKind::Not, vec![a])
    }

    /// Two-input AND with folding.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) | (_, Some(false)) => self.zero(),
            (Some(true), _) => b,
            (_, Some(true)) => a,
            _ if a == b => a,
            _ => self.emit(GateKind::And, vec![a, b]),
        }
    }

    /// Two-input OR with folding.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.is_const(a), self.is_const(b)) {
            (Some(true), _) | (_, Some(true)) => self.one(),
            (Some(false), _) => b,
            (_, Some(false)) => a,
            _ if a == b => a,
            _ => self.emit(GateKind::Or, vec![a, b]),
        }
    }

    /// Two-input XOR with folding.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) => b,
            (_, Some(false)) => a,
            (Some(true), _) => self.not(b),
            (_, Some(true)) => self.not(a),
            _ if a == b => self.zero(),
            _ => self.emit(GateKind::Xor, vec![a, b]),
        }
    }

    /// Two-input NAND (via AND + NOT folding).
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.and(a, b);
        self.not(x)
    }

    /// Two-input NOR.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.or(a, b);
        self.not(x)
    }

    /// Two-input XNOR.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.xor(a, b);
        self.not(x)
    }

    /// 2:1 multiplexer: `sel ? t : e`, with folding.
    pub fn mux(&mut self, sel: NetId, t: NetId, e: NetId) -> NetId {
        if let Some(v) = self.is_const(sel) {
            return if v { t } else { e };
        }
        if t == e {
            return t;
        }
        // sel ? 1 : e  →  sel | e;   sel ? 0 : e → !sel & e
        // sel ? t : 1  →  !sel | t;  sel ? t : 0 → sel & t
        match (self.is_const(t), self.is_const(e)) {
            (Some(true), _) => return self.or(sel, e),
            (Some(false), _) => {
                let ns = self.not(sel);
                return self.and(ns, e);
            }
            (_, Some(true)) => {
                let ns = self.not(sel);
                return self.or(ns, t);
            }
            (_, Some(false)) => return self.and(sel, t),
            _ => {}
        }
        let a = self.and(sel, t);
        let ns = self.not(sel);
        let b = self.and(ns, e);
        self.or(a, b)
    }

    /// AND-reduction over a slice of bits.
    pub fn and_reduce(&mut self, bits: &[NetId]) -> NetId {
        let mut acc = self.one();
        for &b in bits {
            acc = self.and(acc, b);
        }
        acc
    }

    /// OR-reduction over a slice of bits.
    pub fn or_reduce(&mut self, bits: &[NetId]) -> NetId {
        let mut acc = self.zero();
        for &b in bits {
            acc = self.or(acc, b);
        }
        acc
    }

    /// XOR-reduction (parity) over a slice of bits.
    pub fn xor_reduce(&mut self, bits: &[NetId]) -> NetId {
        let mut acc = self.zero();
        for &b in bits {
            acc = self.xor(acc, b);
        }
        acc
    }

    /// Word equality: 1 iff every bit pair matches.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch (synthesis invariant).
    pub fn eq_words(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len(), "eq over different widths");
        let mut acc = self.one();
        for (&x, &y) in a.iter().zip(b) {
            let m = self.xnor(x, y);
            acc = self.and(acc, m);
        }
        acc
    }

    /// Unsigned less-than over equal-width words (LSB-first slices).
    pub fn lt_words(&mut self, a: &[NetId], b: &[NetId]) -> NetId {
        assert_eq!(a.len(), b.len(), "lt over different widths");
        // From LSB to MSB: lt = (!a & b) | (eq_bit & lt_prev)
        let mut lt = self.zero();
        for (&x, &y) in a.iter().zip(b) {
            let nx = self.not(x);
            let here = self.and(nx, y);
            let eq = self.xnor(x, y);
            let keep = self.and(eq, lt);
            lt = self.or(here, keep);
        }
        lt
    }

    /// Ripple-carry adder; returns sum bits (carry-out discarded —
    /// modular arithmetic).
    pub fn add_words(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "add over different widths");
        let mut carry = self.zero();
        let mut sum = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor(x, y);
            let s = self.xor(xy, carry);
            let c1 = self.and(x, y);
            let c2 = self.and(xy, carry);
            carry = self.or(c1, c2);
            sum.push(s);
        }
        sum
    }

    /// Modular subtraction `a - b` via two's complement.
    pub fn sub_words(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "sub over different widths");
        // a + !b + 1: seed the ripple carry with 1.
        let mut carry = self.one();
        let mut diff = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let ny = self.not(y);
            let xy = self.xor(x, ny);
            let s = self.xor(xy, carry);
            let c1 = self.and(x, ny);
            let c2 = self.and(xy, carry);
            carry = self.or(c1, c2);
            diff.push(s);
        }
        diff
    }

    /// Modular shift-and-add multiplier.
    pub fn mul_words(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "mul over different widths");
        let w = a.len();
        let zero = self.zero();
        let mut acc = vec![zero; w];
        for (shift, &bit) in b.iter().enumerate() {
            // partial = (a << shift) gated by b[shift]
            let mut partial = vec![zero; w];
            for i in shift..w {
                partial[i] = self.and(a[i - shift], bit);
            }
            acc = self.add_words(&acc, &partial);
        }
        acc
    }

    /// Dynamic bit-select: a mux tree returning `base[index]`, or 0 when
    /// the index exceeds the width (matching behavioral semantics).
    pub fn dyn_index(&mut self, base: &[NetId], index: &[NetId]) -> NetId {
        let mut acc = self.zero();
        for (i, &bit) in base.iter().enumerate() {
            let sel = self.index_is(index, i as u64);
            let hit = self.and(sel, bit);
            acc = self.or(acc, hit);
        }
        acc
    }

    /// Comparator `index == value` for a constant value.
    pub fn index_is(&mut self, index: &[NetId], value: u64) -> NetId {
        if index.len() < 64 && value >= (1u64 << index.len()) {
            return self.zero();
        }
        let mut acc = self.one();
        for (i, &bit) in index.iter().enumerate() {
            let want = (value >> i) & 1 == 1;
            let m = if want { bit } else { self.not(bit) };
            acc = self.and(acc, m);
        }
        acc
    }

    /// A constant word, LSB-first.
    pub fn constant_word(&mut self, width: u32, value: u64) -> Vec<NetId> {
        (0..width)
            .map(|i| self.constant((value >> i) & 1 == 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_netlist::{Injections, LogicSim};

    /// Evaluates a single-output builder circuit over all input patterns.
    fn truth_table(build: impl FnOnce(&mut GateBuilder, &[NetId]) -> NetId, n: usize) -> Vec<bool> {
        let mut b = GateBuilder::new("t");
        let inputs: Vec<NetId> = (0..n)
            .map(|i| b.netlist_mut().add_input(format!("x{i}")))
            .collect();
        let y = build(&mut b, &inputs);
        b.netlist_mut().mark_output(y);
        let nl = b.finish().freeze().unwrap();
        let mut sim = LogicSim::new(&nl);
        let mut words = vec![0u64; n];
        for p in 0..(1u64 << n) {
            for (i, w) in words.iter_mut().enumerate() {
                if (p >> i) & 1 == 1 {
                    *w |= 1 << p;
                }
            }
        }
        sim.set_inputs(&words);
        sim.eval(&Injections::none());
        let out = sim.outputs()[0];
        (0..(1u64 << n)).map(|p| (out >> p) & 1 == 1).collect()
    }

    #[test]
    fn mux_truth_table() {
        let tt = truth_table(|b, x| b.mux(x[0], x[1], x[2]), 3);
        for (p, &got) in tt.iter().enumerate() {
            let (sel, t, e) = (p & 1 == 1, p & 2 == 2, p & 4 == 4);
            assert_eq!(got, if sel { t } else { e }, "p={p}");
        }
    }

    #[test]
    fn adder_is_modular() {
        let mut b = GateBuilder::new("add");
        let a: Vec<NetId> = (0..4).map(|i| b.netlist_mut().add_input(format!("a{i}"))).collect();
        let c: Vec<NetId> = (0..4).map(|i| b.netlist_mut().add_input(format!("b{i}"))).collect();
        let sum = b.add_words(&a, &c);
        for &s in &sum {
            b.netlist_mut().mark_output(s);
        }
        let nl = b.finish().freeze().unwrap();
        let mut sim = LogicSim::new(&nl);
        for (x, y) in [(3u64, 5u64), (15, 1), (9, 9), (0, 0), (7, 12)] {
            let mut words = vec![0u64; 8];
            for i in 0..4 {
                words[i] = if (x >> i) & 1 == 1 { u64::MAX } else { 0 };
                words[4 + i] = if (y >> i) & 1 == 1 { u64::MAX } else { 0 };
            }
            sim.set_inputs(&words);
            sim.eval(&Injections::none());
            let outs = sim.outputs();
            let got: u64 = (0..4).map(|i| (outs[i] & 1) << i).sum();
            assert_eq!(got, (x + y) & 0xF, "{x}+{y}");
        }
    }

    #[test]
    fn sub_and_mul_words() {
        let mut b = GateBuilder::new("alu");
        let a: Vec<NetId> = (0..4).map(|i| b.netlist_mut().add_input(format!("a{i}"))).collect();
        let c: Vec<NetId> = (0..4).map(|i| b.netlist_mut().add_input(format!("b{i}"))).collect();
        let diff = b.sub_words(&a, &c);
        let prod = b.mul_words(&a, &c);
        for &s in diff.iter().chain(&prod) {
            b.netlist_mut().mark_output(s);
        }
        let nl = b.finish().freeze().unwrap();
        let mut sim = LogicSim::new(&nl);
        for (x, y) in [(3u64, 5u64), (12, 7), (15, 15), (0, 9)] {
            let mut words = vec![0u64; 8];
            for i in 0..4 {
                words[i] = if (x >> i) & 1 == 1 { u64::MAX } else { 0 };
                words[4 + i] = if (y >> i) & 1 == 1 { u64::MAX } else { 0 };
            }
            sim.set_inputs(&words);
            sim.eval(&Injections::none());
            let outs = sim.outputs();
            let d: u64 = (0..4).map(|i| (outs[i] & 1) << i).sum();
            let p: u64 = (0..4).map(|i| (outs[4 + i] & 1) << i).sum();
            assert_eq!(d, x.wrapping_sub(y) & 0xF, "{x}-{y}");
            assert_eq!(p, (x * y) & 0xF, "{x}*{y}");
        }
    }

    #[test]
    fn comparators() {
        let mut b = GateBuilder::new("cmp");
        let a: Vec<NetId> = (0..3).map(|i| b.netlist_mut().add_input(format!("a{i}"))).collect();
        let c: Vec<NetId> = (0..3).map(|i| b.netlist_mut().add_input(format!("b{i}"))).collect();
        let lt = b.lt_words(&a, &c);
        let eq = b.eq_words(&a, &c);
        b.netlist_mut().mark_output(lt);
        b.netlist_mut().mark_output(eq);
        let nl = b.finish().freeze().unwrap();
        let mut sim = LogicSim::new(&nl);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut words = vec![0u64; 6];
                for i in 0..3 {
                    words[i] = if (x >> i) & 1 == 1 { u64::MAX } else { 0 };
                    words[3 + i] = if (y >> i) & 1 == 1 { u64::MAX } else { 0 };
                }
                sim.set_inputs(&words);
                sim.eval(&Injections::none());
                let outs = sim.outputs();
                assert_eq!(outs[0] & 1 == 1, x < y, "{x}<{y}");
                assert_eq!(outs[1] & 1 == 1, x == y, "{x}=={y}");
            }
        }
    }

    #[test]
    fn folding_eliminates_constants() {
        let mut b = GateBuilder::new("fold");
        let a = b.netlist_mut().add_input("a");
        let zero = b.zero();
        let one = b.one();
        assert_eq!(b.and(a, one), a);
        assert_eq!(b.and(a, zero), zero);
        assert_eq!(b.or(a, zero), a);
        assert_eq!(b.or(a, one), one);
        assert_eq!(b.xor(a, zero), a);
        let na = b.not(a);
        assert_eq!(b.not(na), a, "double negation folds");
        assert_eq!(b.xor(a, a), zero);
        assert_eq!(b.and(a, a), a);
        assert_eq!(b.mux(one, a, zero), a);
    }

    #[test]
    fn hash_consing_deduplicates() {
        let mut b = GateBuilder::new("cse");
        let x = b.netlist_mut().add_input("x");
        let y = b.netlist_mut().add_input("y");
        let g1 = b.and(x, y);
        let g2 = b.and(y, x); // symmetric: same gate
        assert_eq!(g1, g2);
        let n_before = b.netlist_mut().gate_count();
        let _ = b.and(x, y);
        assert_eq!(b.netlist_mut().gate_count(), n_before);
    }

    #[test]
    fn dyn_index_defaults_to_zero() {
        let mut b = GateBuilder::new("dix");
        let base: Vec<NetId> = (0..3).map(|i| b.netlist_mut().add_input(format!("d{i}"))).collect();
        let index: Vec<NetId> = (0..2).map(|i| b.netlist_mut().add_input(format!("s{i}"))).collect();
        let y = b.dyn_index(&base, &index);
        b.netlist_mut().mark_output(y);
        let nl = b.finish().freeze().unwrap();
        let mut sim = LogicSim::new(&nl);
        // data = 0b101, select 0..=3: expect 1,0,1,0(out of range).
        for (sel, expect) in [(0u64, 1u64), (1, 0), (2, 1), (3, 0)] {
            let mut words = vec![0u64; 5];
            words[0] = u64::MAX;
            words[2] = u64::MAX;
            words[3] = if sel & 1 == 1 { u64::MAX } else { 0 };
            words[4] = if sel & 2 == 2 { u64::MAX } else { 0 };
            sim.set_inputs(&words);
            sim.eval(&Injections::none());
            assert_eq!(sim.outputs()[0] & 1, expect, "sel={sel}");
        }
    }

    #[test]
    fn reductions() {
        let tt = truth_table(|b, x| b.xor_reduce(x), 3);
        for (p, &got) in tt.iter().enumerate() {
            assert_eq!(got, (p.count_ones() % 2) == 1, "p={p}");
        }
        let tt = truth_table(|b, x| b.and_reduce(x), 3);
        for (p, &got) in tt.iter().enumerate() {
            assert_eq!(got, p == 7, "p={p}");
        }
        let tt = truth_table(|b, x| b.or_reduce(x), 3);
        for (p, &got) in tt.iter().enumerate() {
            assert_eq!(got, p != 0, "p={p}");
        }
    }
}
