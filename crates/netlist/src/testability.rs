//! SCOAP testability analysis (Goldstein 1979).
//!
//! Combinational **controllability** — `CC0(n)` / `CC1(n)`, the effort to
//! drive net `n` to 0 / 1 — and **observability** — `CO(n)`, the effort
//! to propagate `n`'s value to a primary output. Deterministic ATPG uses
//! the measures to steer backtrace; the analysis is also a quick way to
//! rank a netlist's hardest fault sites.
//!
//! Flip-flops are treated as pseudo-inputs/outputs (full-scan view),
//! which is exact for combinational circuits and the standard
//! approximation otherwise.

use crate::netlist::{GateKind, NetId, Netlist, Node};

/// Effort value used for "practically uncontrollable/unobservable"
/// (constants on the wrong polarity; nets cut off from outputs).
pub const UNREACHABLE: u32 = 1 << 20;

/// SCOAP measures for every net of a netlist.
///
/// # Examples
///
/// ```
/// use musa_netlist::{parse_bench, Testability, C17};
///
/// let nl = parse_bench(C17, "c17")?;
/// let scoap = Testability::analyze(&nl);
/// let g22 = nl.net_by_name("G22").unwrap();
/// // Primary outputs are free to observe.
/// assert_eq!(scoap.co(g22), 0);
/// # Ok::<(), musa_netlist::BenchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Testability {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

impl Testability {
    /// Computes the three measures for a frozen netlist.
    pub fn analyze(nl: &Netlist) -> Self {
        let n = nl.net_count();
        let mut cc0 = vec![UNREACHABLE; n];
        let mut cc1 = vec![UNREACHABLE; n];

        // Controllability, sources first then topological order.
        for net in nl.nets() {
            match nl.node(net) {
                Node::Input | Node::Dff { .. } => {
                    cc0[net.0 as usize] = 1;
                    cc1[net.0 as usize] = 1;
                }
                Node::Const(false) => cc0[net.0 as usize] = 0,
                Node::Const(true) => cc1[net.0 as usize] = 0,
                Node::Gate { .. } => {}
            }
        }
        for &g in nl.topo_order() {
            let Node::Gate { kind, inputs } = nl.node(g) else {
                continue;
            };
            let (c0, c1) = gate_controllability(*kind, inputs, &cc0, &cc1);
            cc0[g.0 as usize] = c0;
            cc1[g.0 as usize] = c1;
        }

        // Observability: outputs are free; propagate backwards through
        // gates, and through flip-flops (one clock of extra effort).
        // Paths through registers need another backward sweep, so iterate
        // to the fixpoint — values only decrease, so this terminates.
        let mut co = vec![UNREACHABLE; n];
        for &output in nl.outputs() {
            co[output.0 as usize] = 0;
        }
        let mut order: Vec<NetId> = nl.topo_order().to_vec();
        order.reverse();
        loop {
            let mut changed = false;
            for net in nl.nets() {
                if let Node::Dff { d, .. } = nl.node(net) {
                    let through = co[net.0 as usize].saturating_add(1);
                    if through < co[d.0 as usize] {
                        co[d.0 as usize] = through;
                        changed = true;
                    }
                }
            }
            for &g in &order {
                let Node::Gate { kind, inputs } = nl.node(g) else {
                    continue;
                };
                let out_co = co[g.0 as usize];
                for (pin, &input) in inputs.iter().enumerate() {
                    let side: u32 = inputs
                        .iter()
                        .enumerate()
                        .filter(|(other, _)| *other != pin)
                        .map(|(_, &j)| side_cost(*kind, j, &cc0, &cc1))
                        .fold(0u32, |a, b| a.saturating_add(b));
                    let through = out_co.saturating_add(side).saturating_add(1);
                    if through < co[input.0 as usize] {
                        co[input.0 as usize] = through;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        Self { cc0, cc1, co }
    }

    /// Effort to drive `net` to 0.
    pub fn cc0(&self, net: NetId) -> u32 {
        self.cc0[net.0 as usize]
    }

    /// Effort to drive `net` to 1.
    pub fn cc1(&self, net: NetId) -> u32 {
        self.cc1[net.0 as usize]
    }

    /// Effort to observe `net` at a primary output.
    pub fn co(&self, net: NetId) -> u32 {
        self.co[net.0 as usize]
    }

    /// Detection-effort estimate for a stuck-at fault on `net`:
    /// controllability of the opposite value plus observability.
    pub fn fault_effort(&self, net: NetId, stuck_at_one: bool) -> u32 {
        let control = if stuck_at_one {
            self.cc0(net)
        } else {
            self.cc1(net)
        };
        control.saturating_add(self.co(net))
    }

    /// Nets ranked hardest-first by combined fault effort.
    pub fn hardest_nets(&self, nl: &Netlist, top: usize) -> Vec<(NetId, u32)> {
        let mut ranked: Vec<(NetId, u32)> = nl
            .nets()
            .map(|net| {
                (
                    net,
                    self.fault_effort(net, false)
                        .max(self.fault_effort(net, true)),
                )
            })
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(top);
        ranked
    }
}

/// The controllability cost of holding `input` at the gate's
/// non-controlling value (for observability side-input terms).
fn side_cost(kind: GateKind, input: NetId, cc0: &[u32], cc1: &[u32]) -> u32 {
    let i = input.0 as usize;
    match kind {
        GateKind::And | GateKind::Nand => cc1[i],
        GateKind::Or | GateKind::Nor => cc0[i],
        GateKind::Not | GateKind::Buf => 0,
        // XOR-family: either value works; take the cheaper.
        GateKind::Xor | GateKind::Xnor => cc0[i].min(cc1[i]),
    }
}

fn gate_controllability(
    kind: GateKind,
    inputs: &[NetId],
    cc0: &[u32],
    cc1: &[u32],
) -> (u32, u32) {
    let sum = |table: &[u32]| -> u32 {
        inputs
            .iter()
            .map(|i| table[i.0 as usize])
            .fold(0u32, |a, b| a.saturating_add(b))
            .saturating_add(1)
    };
    let min = |table: &[u32]| -> u32 {
        inputs
            .iter()
            .map(|i| table[i.0 as usize])
            .min()
            .unwrap_or(UNREACHABLE)
            .saturating_add(1)
    };
    match kind {
        GateKind::And => (min(cc0), sum(cc1)),
        GateKind::Nand => (sum(cc1), min(cc0)),
        GateKind::Or => (sum(cc0), min(cc1)),
        GateKind::Nor => (min(cc1), sum(cc0)),
        GateKind::Not => (
            cc1[inputs[0].0 as usize].saturating_add(1),
            cc0[inputs[0].0 as usize].saturating_add(1),
        ),
        GateKind::Buf => (
            cc0[inputs[0].0 as usize].saturating_add(1),
            cc1[inputs[0].0 as usize].saturating_add(1),
        ),
        GateKind::Xor | GateKind::Xnor => {
            let mut c0 = cc0[inputs[0].0 as usize];
            let mut c1 = cc1[inputs[0].0 as usize];
            for i in &inputs[1..] {
                let (b0, b1) = (cc0[i.0 as usize], cc1[i.0 as usize]);
                let even = (c0.saturating_add(b0)).min(c1.saturating_add(b1));
                let odd = (c0.saturating_add(b1)).min(c1.saturating_add(b0));
                c0 = even.saturating_add(1);
                c1 = odd.saturating_add(1);
            }
            if kind == GateKind::Xnor {
                (c1, c0)
            } else {
                (c0, c1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{parse_bench, C17};
    use crate::netlist::Netlist;

    #[test]
    fn textbook_and_gate_values() {
        // y = AND(a, b): CC0(y) = min(1,1)+1 = 2, CC1(y) = 1+1+1 = 3,
        // CO(a) = CO(y) + CC1(b) + 1 = 0 + 1 + 1 = 2.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate("y", GateKind::And, vec![a, b]);
        nl.mark_output(y);
        let nl = nl.freeze().unwrap();
        let s = Testability::analyze(&nl);
        let a = nl.net_by_name("a").unwrap();
        let y = nl.net_by_name("y").unwrap();
        assert_eq!(s.cc0(y), 2);
        assert_eq!(s.cc1(y), 3);
        assert_eq!(s.co(y), 0);
        assert_eq!(s.co(a), 2);
        assert_eq!(s.cc0(a), 1);
        assert_eq!(s.cc1(a), 1);
    }

    #[test]
    fn inverter_swaps_controllabilities() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_gate("y", GateKind::Not, vec![a]);
        nl.mark_output(y);
        let nl = nl.freeze().unwrap();
        let s = Testability::analyze(&nl);
        let y = nl.net_by_name("y").unwrap();
        assert_eq!(s.cc0(y), 2);
        assert_eq!(s.cc1(y), 2);
        let a = nl.net_by_name("a").unwrap();
        assert_eq!(s.co(a), 1);
    }

    #[test]
    fn constants_are_one_sided() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let one = nl.add_const("one", true);
        let y = nl.add_gate("y", GateKind::And, vec![a, one]);
        nl.mark_output(y);
        let nl = nl.freeze().unwrap();
        let s = Testability::analyze(&nl);
        let one = nl.net_by_name("one").unwrap();
        assert_eq!(s.cc1(one), 0);
        assert_eq!(s.cc0(one), UNREACHABLE, "a tied-1 net cannot be driven low");
    }

    #[test]
    fn depth_increases_effort() {
        // A NAND chain: controllability grows along the chain.
        let mut nl = Netlist::new("chain");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let mut prev = nl.add_gate("g0", GateKind::Nand, vec![a, b]);
        for i in 1..6 {
            prev = nl.add_gate(format!("g{i}"), GateKind::Nand, vec![prev, b]);
        }
        nl.mark_output(prev);
        let nl = nl.freeze().unwrap();
        let s = Testability::analyze(&nl);
        let g0 = nl.net_by_name("g0").unwrap();
        let g5 = nl.net_by_name("g5").unwrap();
        assert!(s.cc0(g5) > s.cc0(g0));
        assert!(s.co(g0) > s.co(g5));
    }

    #[test]
    fn c17_hardest_nets_are_interior() {
        let nl = parse_bench(C17, "c17").unwrap();
        let s = Testability::analyze(&nl);
        let hardest = s.hardest_nets(&nl, 3);
        assert_eq!(hardest.len(), 3);
        // Everything in c17 is reachable and observable.
        for (net, effort) in &hardest {
            assert!(*effort < UNREACHABLE, "{}", nl.net_name(*net));
        }
        // Outputs observe for free; they cannot be the hardest.
        for &o in nl.outputs() {
            assert_eq!(s.co(o), 0);
        }
    }

    #[test]
    fn observability_reaches_through_flops() {
        // en feeds logic observable only via a flop: the D cone must get
        // finite observability after the fixpoint iteration.
        let src = "
INPUT(a)
INPUT(b)
OUTPUT(q)
g = AND(a, b)
h = NOT(g)
q = DFF(h)
";
        let nl = parse_bench(src, "t").unwrap();
        let s = Testability::analyze(&nl);
        for name in ["a", "b", "g", "h"] {
            let net = nl.net_by_name(name).unwrap();
            assert!(
                s.co(net) < UNREACHABLE,
                "{name} must observe through the flop (co={})",
                s.co(net)
            );
        }
    }

    #[test]
    fn dff_counts_as_pseudo_port() {
        let src = "
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";
        let nl = parse_bench(src, "t").unwrap();
        let s = Testability::analyze(&nl);
        let q = nl.net_by_name("q").unwrap();
        let d = nl.net_by_name("d").unwrap();
        assert_eq!(s.cc0(q), 1, "flop output is a pseudo-input");
        assert_eq!(s.co(q), 0, "q is also a primary output here");
        assert!(s.co(d) <= 1, "d observes through the flop");
    }
}
