//! Dominance-based fault-list reduction.
//!
//! Fault `f` **dominates** fault `g` when every test detecting `g` also
//! detects `f`. The classic structural source of dominance is the
//! gate-local rule complementary to equivalence collapsing: for a gate
//! with a controlling input value `c`, the output fault whose effect a
//! single controlling input produces dominates every input fault stuck
//! at the non-controlling value:
//!
//! | gate | dominated input fault | dominating output fault |
//! |------|-----------------------|-------------------------|
//! | AND  | s-a-1                 | s-a-1                   |
//! | NAND | s-a-1                 | s-a-0                   |
//! | OR   | s-a-0                 | s-a-0                   |
//! | NOR  | s-a-0                 | s-a-1                   |
//!
//! (NOT/BUF/DFF-D input faults are *equivalent* to their output faults
//! and are already merged by [`crate::collapse`]; XOR-family gates have
//! neither equivalences nor dominances.)
//!
//! [`reduce_faults`] composes these rules over the equivalence classes
//! of the full fault universe — chains of dominating faults through a
//! fanout-free region resolve transitively down to the region's
//! *checkpoint* faults — and plans, for each fault of a collapsed list,
//! how the reduced engines handle it:
//!
//! * a *kept* fault is simulated and its first-detection index is exact;
//! * an **observed** fault — a stem on a net with a NOT/BUF-only path
//!   to a primary output — is unobservable before excitation and
//!   observed the moment it is excited, so its exact first-detection
//!   index (or undetected verdict) falls out of the good-machine
//!   output trace without any lane, sequential or not;
//! * a *dropped* (dominating) fault is detected whenever one of its
//!   dominated representatives is detected — by dominance, the same
//!   test prefix detects it — and is credited the earliest such index
//!   (an upper bound on its true first detection);
//! * a dropped fault none of whose representatives were detected is
//!   **residually simulated** by the reduced engines in
//!   [`crate::fsim`], so its detected/undetected verdict is never
//!   guessed.
//!
//! The guarantee, therefore: reduced simulation reports the **same
//! detected/undetected verdict — hence the same final coverage and
//! detected count — for every fault of the collapsed list** as full
//! simulation, while only representatives and residuals occupy lanes.
//! For combinational circuits this is the single-fault dominance
//! theorem. For sequential circuits the per-vector theorem does *not*
//! lift across time frames in general — a dominating fault that
//! corrupts state can mask itself in later frames while the dominated
//! fault still propagates (b03 exhibits exactly this) — so dominance
//! edges are only emitted for gates whose fault effects cannot reach
//! any flip-flop data input. With a state-free cone no machine's state
//! ever diverges from the good machine's, every frame reduces to the
//! combinational theorem over shared state, and the verdict guarantee
//! is restored unconditionally. First-detection *indices* of credited
//! faults are upper bounds, so pipelines that read coverage-curve
//! interiors (the pseudo-random baseline of `musa_core`, the E2 curve
//! dumps) keep full simulation.

use crate::fault::{effective_input_fault, equivalence_union, full_faults};
use crate::netlist::{GateKind, Netlist, Node};
use crate::{Fault, FaultSite, NetId};
use std::collections::HashMap;

/// How one fault of a reduced list is handled by the simulation
/// engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultPlan {
    /// The fault occupies a simulation lane; its result is exact.
    Simulate,
    /// The fault is dropped from the lanes: it is detected whenever one
    /// of the listed faults (indices into the reduced list, each a
    /// [`FaultPlan::Simulate`] or [`FaultPlan::Observe`] entry) is
    /// detected, and credited the earliest such first-detection index.
    /// If none is detected it is residually simulated.
    Credit(Vec<usize>),
    /// A stem fault on a net with an unconditional (NOT/BUF-only) path
    /// to a primary output: it cannot be observed before it is excited,
    /// and at first excitation that output shows it immediately, so its
    /// exact first-detection index is the first vector where the good
    /// machine's output reads `expect` — no lane needed, even for the
    /// undetected verdict.
    Observe {
        /// Index into `Netlist::outputs()` of the observing output.
        output: usize,
        /// The good-machine value at that output that marks detection
        /// (the stuck value complemented, adjusted by path inversions).
        expect: bool,
    },
}

/// A dominance-reduced fault list: the caller's faults plus a per-fault
/// simulation plan. Build with [`reduce_faults`], simulate with
/// [`crate::fault_simulate_reduced`] /
/// [`crate::fault_simulate_sessions_reduced`].
#[derive(Debug, Clone)]
pub struct FaultReduction {
    faults: Vec<Fault>,
    plan: Vec<FaultPlan>,
    simulated: usize,
}

impl FaultReduction {
    /// The full fault list, in the caller's order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// The plan for fault `i`.
    pub fn plan(&self, i: usize) -> &FaultPlan {
        &self.plan[i]
    }

    /// Number of faults in the list.
    pub fn total(&self) -> usize {
        self.faults.len()
    }

    /// Number of faults that always occupy a simulation lane
    /// ([`FaultPlan::Simulate`] entries). Residuals come on top of this
    /// per run, so a run's `faults_simulated` lies in
    /// `simulated_count() ..= total()`.
    pub fn simulated_count(&self) -> usize {
        self.simulated
    }

    /// Number of dropped (credited or observed) faults.
    pub fn dropped_count(&self) -> usize {
        self.faults.len() - self.simulated
    }

    /// Number of faults resolved by direct output observation
    /// ([`FaultPlan::Observe`]): their exact result comes from the
    /// good-machine trace, never from a lane.
    pub fn observed_count(&self) -> usize {
        self.plan
            .iter()
            .filter(|p| matches!(p, FaultPlan::Observe { .. }))
            .count()
    }

    /// Indices of the always-simulated faults, ascending.
    pub fn simulated_indices(&self) -> Vec<usize> {
        (0..self.faults.len())
            .filter(|&i| self.plan[i] == FaultPlan::Simulate)
            .collect()
    }
}

/// Plans a dominance reduction of `faults` (normally the collapsed list
/// of [`crate::collapsed_faults`]) over the netlist's structure.
///
/// Faults outside the standard universe of [`full_faults`] are kept as
/// [`FaultPlan::Simulate`] untouched, so the function is safe on any
/// list. Duplicate structurally-equivalent entries (an uncollapsed
/// input list) are credited from their first listed class member, which
/// is time-exact.
pub fn reduce_faults(nl: &Netlist, faults: &[Fault]) -> FaultReduction {
    let _trace = musa_trace::span("fault_plan");
    let universe = full_faults(nl);
    let uid: HashMap<Fault, usize> = universe
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, i))
        .collect();
    let mut uf = equivalence_union(nl, &universe);

    // Map each equivalence class (by universe root) to the first input
    // fault carrying it.
    let mut class_to_input: HashMap<usize, usize> = HashMap::new();
    // Per input index: the class root, when the fault is in the universe.
    let roots: Vec<Option<usize>> = faults
        .iter()
        .map(|f| uid.get(f).map(|&u| uf.find(u)))
        .collect();
    for (i, root) in roots.iter().enumerate() {
        if let Some(root) = *root {
            class_to_input.entry(root).or_insert(i);
        }
    }

    // Nets whose fault effects can reach a flip-flop data input. The
    // per-time-frame dominance argument needs the dominating gate's
    // cone to stay state-free: once a fault effect can corrupt state,
    // a dominating fault may mask itself across frames while the
    // dominated fault still propagates (observed on b03), so such
    // gates emit no edges. Combinational circuits mark nothing.
    let mut stateful = vec![false; nl.net_count()];
    let mut stack: Vec<crate::NetId> = nl
        .nets()
        .filter_map(|n| match nl.node(n) {
            Node::Dff { d, .. } => Some(*d),
            _ => None,
        })
        .collect();
    while let Some(n) = stack.pop() {
        if stateful[n.0 as usize] {
            continue;
        }
        stateful[n.0 as usize] = true;
        if let Node::Gate { inputs, .. } = nl.node(n) {
            stack.extend(inputs.iter().copied());
        }
    }

    // Gate-local dominance edges between classes: dominating class root
    // -> dominated class roots (deduplicated, deterministic order).
    let fanouts = nl.fanouts();
    let mut dominated_of: HashMap<usize, Vec<usize>> = HashMap::new();
    for net in nl.nets() {
        let Node::Gate { kind, inputs } = nl.node(net) else {
            continue;
        };
        if stateful[net.0 as usize] {
            continue; // effects can enter state: dominance not sound
        }
        let Some(controlling) = kind.controlling_value() else {
            continue; // XOR-family and unary gates: no dominance.
        };
        // A single controlling input forces the output to `c` (then the
        // inversion, for NAND/NOR); the dominating output fault is the
        // one showing the opposite value.
        let forced_output = controlling ^ kind.is_inverting();
        let dominating = Fault {
            site: crate::FaultSite::Net(net),
            stuck_at_one: !forced_output,
        };
        let Some(&du) = uid.get(&dominating) else {
            continue;
        };
        let droot = uf.find(du);
        for (pin, &src) in inputs.iter().enumerate() {
            let dominated =
                effective_input_fault(&fanouts, net, pin as u32, src, !controlling);
            let Some(&gu) = uid.get(&dominated) else {
                continue;
            };
            let groot = uf.find(gu);
            if groot == droot {
                // Degenerate loop (e.g. through a flop): no self-credit.
                continue;
            }
            let entry = dominated_of.entry(droot).or_default();
            if !entry.contains(&groot) {
                entry.push(groot);
            }
        }
    }

    // Direct observation paths: net -> (output slot, inversion parity)
    // when the net reaches a primary output through NOT/BUF gates only
    // (length 0 for output nets themselves). A stem fault on such a net
    // is unobservable before excitation and observed immediately at it,
    // so its exact result derives from the good-machine output trace.
    let mut observe_path: Vec<Option<(usize, bool)>> = vec![None; nl.net_count()];
    let mut queue: Vec<NetId> = Vec::new();
    for (slot, &o) in nl.outputs().iter().enumerate() {
        if observe_path[o.0 as usize].is_none() {
            observe_path[o.0 as usize] = Some((slot, false));
            queue.push(o);
        }
    }
    while let Some(y) = queue.pop() {
        let (slot, parity) = observe_path[y.0 as usize].expect("queued nets are mapped");
        if let Node::Gate {
            kind: kind @ (GateKind::Not | GateKind::Buf),
            inputs,
        } = nl.node(y)
        {
            let m = inputs[0];
            if observe_path[m.0 as usize].is_none() {
                observe_path[m.0 as usize] =
                    Some((slot, parity ^ matches!(kind, GateKind::Not)));
                queue.push(m);
            }
        }
    }
    let observed_plan = |fault: &Fault| -> Option<FaultPlan> {
        let FaultSite::Net(n) = fault.site else {
            return None;
        };
        let (output, parity) = observe_path[n.0 as usize]?;
        Some(FaultPlan::Observe {
            output,
            expect: !fault.stuck_at_one ^ parity,
        })
    };

    // Per input fault, either a terminal observation plan or the
    // *direct* credit candidates (input-list indices): a later
    // duplicate of a listed class credits its first member
    // (combinational circuits only — the DFF D-pin merge is not a
    // machine equivalence in the power-on frame); a dominating class
    // credits its dominated classes' first members; everything else
    // simulates.
    let dup_credit_ok = nl.is_combinational();
    let observed: Vec<Option<FaultPlan>> =
        faults.iter().map(&observed_plan).collect();
    let direct: Vec<Option<Vec<usize>>> = (0..faults.len())
        .map(|i| {
            if observed[i].is_some() {
                return None;
            }
            let root = roots[i]?;
            let first = class_to_input[&root];
            if first != i {
                // Equivalent to an earlier entry: crediting from it is
                // exact in time as well as in status.
                return dup_credit_ok.then(|| vec![first]);
            }
            let dominated = dominated_of.get(&root)?;
            let sources: Vec<usize> = dominated
                .iter()
                // A dominated representative absent from the caller's
                // list (a subset was passed) cannot carry credit.
                .filter_map(|groot| class_to_input.get(groot).copied())
                .collect();
            if sources.is_empty() {
                None
            } else {
                Some(sources)
            }
        })
        .collect();

    // Expand the candidate chains down to terminal faults (simulated
    // or observed) with a three-color DFS. Cycle edges (a
    // back-reference to an in-progress fault) are skipped: soundly
    // losing one credit branch — the residual pass covers whatever
    // cannot be credited.
    #[derive(Clone, PartialEq)]
    enum State {
        Unvisited,
        InStack,
        Done(FaultPlan),
    }
    fn expand(
        i: usize,
        observed: &[Option<FaultPlan>],
        direct: &[Option<Vec<usize>>],
        state: &mut Vec<State>,
    ) {
        if !matches!(state[i], State::Unvisited) {
            return;
        }
        if let Some(plan) = &observed[i] {
            state[i] = State::Done(plan.clone());
            return;
        }
        let Some(candidates) = &direct[i] else {
            state[i] = State::Done(FaultPlan::Simulate);
            return;
        };
        state[i] = State::InStack;
        let mut sources: Vec<usize> = Vec::new();
        for &j in candidates {
            expand(j, observed, direct, state);
            match &state[j] {
                State::InStack => {} // dominance cycle: skip this branch
                State::Done(FaultPlan::Simulate | FaultPlan::Observe { .. }) => {
                    sources.push(j);
                }
                State::Done(FaultPlan::Credit(inner)) => {
                    sources.extend(inner.iter().copied());
                }
                State::Unvisited => unreachable!("expanded above"),
            }
        }
        sources.sort_unstable();
        sources.dedup();
        state[i] = State::Done(if sources.is_empty() {
            FaultPlan::Simulate
        } else {
            FaultPlan::Credit(sources)
        });
    }
    let mut state = vec![State::Unvisited; faults.len()];
    for i in 0..faults.len() {
        expand(i, &observed, &direct, &mut state);
    }
    let plan: Vec<FaultPlan> = state
        .into_iter()
        .map(|s| match s {
            State::Done(p) => p,
            _ => unreachable!("every fault expanded"),
        })
        .collect();
    let simulated = plan.iter().filter(|p| **p == FaultPlan::Simulate).count();
    FaultReduction {
        faults: faults.to_vec(),
        plan,
        simulated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{parse_bench, C17};
    use crate::fault::collapsed_faults;
    use crate::netlist::{GateKind, Netlist};

    fn and_gate() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate("y", GateKind::And, vec![a, b]);
        nl.mark_output(y);
        nl.freeze().unwrap()
    }

    #[test]
    fn and_output_sa1_is_credited_from_the_input_sa1s() {
        // z = XOR(y, c) hides y from direct observation, so gate y's
        // dominance rule is what reduces y s-a-1.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let y = nl.add_gate("y", GateKind::And, vec![a, b]);
        let z = nl.add_gate("z", GateKind::Xor, vec![y, c]);
        nl.mark_output(z);
        let nl = nl.freeze().unwrap();
        let faults = collapsed_faults(&nl);
        let red = reduce_faults(&nl, &faults);
        let yi = faults
            .iter()
            .position(|f| *f == Fault::net_sa1(y))
            .unwrap();
        let FaultPlan::Credit(sources) = red.plan(yi) else {
            panic!("y s-a-1 must be credited, got {:?}", red.plan(yi));
        };
        let a1 = faults
            .iter()
            .position(|f| *f == Fault::net_sa1(a))
            .unwrap();
        let b1 = faults
            .iter()
            .position(|f| *f == Fault::net_sa1(b))
            .unwrap();
        assert_eq!(sources, &vec![a1, b1]);
        // The primary output's stem faults are directly observed.
        let z0 = faults
            .iter()
            .position(|f| *f == Fault::net_sa0(z))
            .unwrap();
        assert_eq!(
            *red.plan(z0),
            FaultPlan::Observe { output: 0, expect: true },
            "PO stem s-a-0 is detected at the first good 1"
        );
    }

    #[test]
    fn or_chain_credits_transitively_to_checkpoints() {
        // y = OR(a,b); z = OR(y,c): z s-a-0 dominates {y s-a-0, c s-a-0},
        // y s-a-0 dominates {a s-a-0, b s-a-0} — so z credits from the
        // three primary-input checkpoints. (w = XOR(z,d) keeps z off a
        // direct observation path.)
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_input("d");
        let y = nl.add_gate("y", GateKind::Or, vec![a, b]);
        let z = nl.add_gate("z", GateKind::Or, vec![y, c]);
        let w = nl.add_gate("w", GateKind::Xor, vec![z, d]);
        nl.mark_output(w);
        let nl = nl.freeze().unwrap();
        let faults = collapsed_faults(&nl);
        let red = reduce_faults(&nl, &faults);
        let zi = faults
            .iter()
            .position(|f| *f == Fault::net_sa0(nl.net_by_name("z").unwrap()))
            .unwrap();
        let FaultPlan::Credit(sources) = red.plan(zi) else {
            panic!("z s-a-0 must be credited");
        };
        let expected: Vec<usize> = ["a", "b", "c"]
            .iter()
            .map(|n| {
                faults
                    .iter()
                    .position(|f| *f == Fault::net_sa0(nl.net_by_name(n).unwrap()))
                    .unwrap()
            })
            .collect();
        let mut expected = expected;
        expected.sort_unstable();
        assert_eq!(sources, &expected);
        // And every credit source is itself a terminal fault.
        for &s in sources {
            assert!(matches!(
                red.plan(s),
                FaultPlan::Simulate | FaultPlan::Observe { .. }
            ));
        }
    }

    #[test]
    fn xor_gates_yield_no_dominance_credit() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let y = nl.add_gate("y", GateKind::Xor, vec![a, b]);
        let z = nl.add_gate("z", GateKind::Xor, vec![y, c]);
        nl.mark_output(z);
        let nl = nl.freeze().unwrap();
        let faults = collapsed_faults(&nl);
        let red = reduce_faults(&nl, &faults);
        // The PO stems are observed, but no fault is ever *credited*
        // through an XOR gate.
        for (i, fault) in faults.iter().enumerate() {
            assert!(
                !matches!(red.plan(i), FaultPlan::Credit(_)),
                "{}: {:?}",
                fault.describe(&nl),
                red.plan(i)
            );
        }
        assert_eq!(red.dropped_count(), red.observed_count());
    }

    #[test]
    fn c17_reduction_drops_nand_output_sa0_classes() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        assert_eq!(faults.len(), 22);
        let red = reduce_faults(&nl, &faults);
        assert!(
            red.simulated_count() < red.total(),
            "c17's NAND outputs must reduce: {} of {}",
            red.simulated_count(),
            red.total()
        );
        // Every credit source must be a terminal (simulated or
        // observed) entry.
        for i in 0..red.total() {
            if let FaultPlan::Credit(sources) = red.plan(i) {
                assert!(!sources.is_empty());
                for &s in sources {
                    assert!(
                        matches!(
                            red.plan(s),
                            FaultPlan::Simulate | FaultPlan::Observe { .. }
                        ),
                        "fault {i} -> {s}: {:?}",
                        red.plan(s)
                    );
                }
            }
        }
    }

    #[test]
    fn gates_feeding_state_emit_no_dominance() {
        // d = AND(a, b) feeds a flop: a dominating d s-a-1 could mask
        // itself through corrupted state, so it must keep its lane.
        // y = OR(q, b) only feeds the output: state-free cone, reduced.
        let src = "
INPUT(a)
INPUT(b)
OUTPUT(y)
q = DFF(d)
d = AND(a, b)
y = OR(q, b)
";
        let nl = parse_bench(src, "t").unwrap();
        let faults = collapsed_faults(&nl);
        let red = reduce_faults(&nl, &faults);
        // d s-a-1 collapsed into q s-a-1 through the flop's D pin; the
        // class representative must keep its lane.
        let d1 = faults
            .iter()
            .position(|f| *f == Fault::net_sa1(nl.net_by_name("q").unwrap()))
            .expect("q s-a-1 represents the d s-a-1 class");
        assert_eq!(*red.plan(d1), FaultPlan::Simulate, "stateful cone keeps its lane");
        let y0 = faults
            .iter()
            .position(|f| *f == Fault::net_sa0(nl.net_by_name("y").unwrap()))
            .expect("y s-a-0 is its own representative");
        assert!(
            matches!(red.plan(y0), FaultPlan::Observe { .. }),
            "the output stem is directly observed"
        );
    }

    #[test]
    fn uncollapsed_duplicates_credit_their_first_class_member() {
        let nl = and_gate();
        let faults = full_faults(&nl); // a0,a1,b0,b1,y0,y1
        let red = reduce_faults(&nl, &faults);
        // b0 is equivalent to a0 (listed first): credited. y0 sits on
        // the primary output, so direct observation wins.
        let b0 = 2;
        let y0 = 4;
        assert_eq!(*red.plan(b0), FaultPlan::Credit(vec![0]));
        assert!(matches!(red.plan(y0), FaultPlan::Observe { .. }));
    }

    #[test]
    fn foreign_faults_are_simulated_untouched() {
        let nl = and_gate();
        // A pin fault that does not exist in the universe (no fanout).
        let weird = Fault {
            site: crate::FaultSite::Pin {
                gate: nl.net_by_name("y").unwrap(),
                pin: 0,
            },
            stuck_at_one: true,
        };
        let red = reduce_faults(&nl, &[weird]);
        assert_eq!(*red.plan(0), FaultPlan::Simulate);
        assert_eq!(red.simulated_count(), 1);
    }

    #[test]
    fn reduction_is_deterministic() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        let r1 = reduce_faults(&nl, &faults);
        let r2 = reduce_faults(&nl, &faults);
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }
}
