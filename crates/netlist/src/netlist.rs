//! Gate-level netlist data structure.
//!
//! The model follows the ISCAS `.bench` convention: a circuit is a set of
//! *nets*, each driven by exactly one node — a primary input, a constant,
//! a logic gate over other nets, or a D flip-flop. Primary outputs are
//! nets marked as observable.

use std::collections::HashMap;
use std::fmt;

/// Identity of a net (and of the node driving it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// Logic gate function. All gates except [`GateKind::Not`] and
/// [`GateKind::Buf`] accept two or more inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// n-input AND.
    And,
    /// n-input OR.
    Or,
    /// n-input NAND.
    Nand,
    /// n-input NOR.
    Nor,
    /// n-input XOR (odd parity).
    Xor,
    /// n-input XNOR (even parity).
    Xnor,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
}

impl GateKind {
    /// The `.bench` keyword for this gate.
    pub fn bench_name(self) -> &'static str {
        match self {
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUFF",
        }
    }

    /// `true` when the gate output is the complement of the same gate
    /// without inversion (NAND/NOR/XNOR/NOT).
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Xnor | GateKind::Not
        )
    }

    /// The controlling input value, if the gate has one (AND/NAND → 0,
    /// OR/NOR → 1). XOR-family and unary gates have none.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// Evaluates the gate over 64-pattern words.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        assert!(!inputs.is_empty(), "gate with no inputs");
        match self {
            GateKind::And => inputs.iter().fold(u64::MAX, |acc, &x| acc & x),
            GateKind::Or => inputs.iter().fold(0, |acc, &x| acc | x),
            GateKind::Nand => !inputs.iter().fold(u64::MAX, |acc, &x| acc & x),
            GateKind::Nor => !inputs.iter().fold(0, |acc, &x| acc | x),
            GateKind::Xor => inputs.iter().fold(0, |acc, &x| acc ^ x),
            GateKind::Xnor => !inputs.iter().fold(0, |acc, &x| acc ^ x),
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_name())
    }
}

/// The node driving a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Primary input.
    Input,
    /// Constant 0 or 1.
    Const(bool),
    /// Logic gate over other nets.
    Gate {
        /// Gate function.
        kind: GateKind,
        /// Input nets (pin order matters for fault sites).
        inputs: Vec<NetId>,
    },
    /// D flip-flop: samples `d` on the clock edge; powers up at `init`.
    Dff {
        /// Data input net (`NetId::MAX`-sentinel until connected).
        d: NetId,
        /// Power-on state.
        init: bool,
    },
}

/// Error validating or building a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate or flop references a net that does not exist.
    DanglingNet {
        /// The referencing net.
        at: String,
    },
    /// A D flip-flop's data input was never connected.
    UnconnectedDff {
        /// The flop's output net name.
        name: String,
    },
    /// The combinational core contains a cycle.
    CombinationalLoop {
        /// A net on the cycle.
        on: String,
    },
    /// A net name is used twice.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// A gate has too few inputs for its kind.
    BadArity {
        /// The gate's output net name.
        name: String,
    },
    /// An output refers to an unknown net.
    UnknownOutput {
        /// The name given.
        name: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingNet { at } => write!(f, "dangling net reference at `{at}`"),
            NetlistError::UnconnectedDff { name } => {
                write!(f, "flip-flop `{name}` has no data input")
            }
            NetlistError::CombinationalLoop { on } => {
                write!(f, "combinational loop through `{on}`")
            }
            NetlistError::DuplicateName { name } => write!(f, "duplicate net name `{name}`"),
            NetlistError::BadArity { name } => write!(f, "too few gate inputs at `{name}`"),
            NetlistError::UnknownOutput { name } => write!(f, "unknown output net `{name}`"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Sentinel for a not-yet-connected flop input.
const UNCONNECTED: NetId = NetId(u32::MAX);

/// A gate-level circuit.
///
/// Build with the `add_*` methods, connect any forward-referenced flop
/// inputs, then call [`Netlist::freeze`] to validate and compute the
/// evaluation order. Analysis accessors panic on an unfrozen netlist.
///
/// # Examples
///
/// ```
/// use musa_netlist::{GateKind, Netlist};
///
/// let mut nl = Netlist::new("toy");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate("g", GateKind::Nand, vec![a, b]);
/// nl.mark_output(g);
/// let nl = nl.freeze()?;
/// assert_eq!(nl.gate_count(), 1);
/// assert!(nl.is_combinational());
/// # Ok::<(), musa_netlist::NetlistError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    names: Vec<String>,
    by_name: HashMap<String, NetId>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    dffs: Vec<NetId>,
    /// Topological order of gate nets (inputs/consts/flops excluded);
    /// populated by `freeze`.
    topo: Vec<NetId>,
    frozen: bool,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            names: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
            topo: Vec::new(),
            frozen: false,
        }
    }

    fn push(&mut self, name: String, node: Node) -> NetId {
        let id = NetId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.nodes.push(node);
        self.frozen = false;
        id
    }

    /// Adds a primary input net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.push(name.into(), Node::Input);
        self.inputs.push(id);
        id
    }

    /// Adds a constant net.
    pub fn add_const(&mut self, name: impl Into<String>, value: bool) -> NetId {
        self.push(name.into(), Node::Const(value))
    }

    /// Adds a gate net.
    pub fn add_gate(&mut self, name: impl Into<String>, kind: GateKind, inputs: Vec<NetId>) -> NetId {
        self.push(name.into(), Node::Gate { kind, inputs })
    }

    /// Adds a D flip-flop whose data input will be connected later via
    /// [`Netlist::connect_dff`].
    pub fn add_dff(&mut self, name: impl Into<String>, init: bool) -> NetId {
        let id = self.push(
            name.into(),
            Node::Dff {
                d: UNCONNECTED,
                init,
            },
        );
        self.dffs.push(id);
        id
    }

    /// Connects the data input of a flop created by [`Netlist::add_dff`].
    ///
    /// # Panics
    ///
    /// Panics if `ff` is not a flip-flop net.
    pub fn connect_dff(&mut self, ff: NetId, d: NetId) {
        match &mut self.nodes[ff.0 as usize] {
            Node::Dff { d: slot, .. } => *slot = d,
            _ => panic!("{ff} is not a flip-flop"),
        }
        self.frozen = false;
    }

    /// Marks a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.outputs.push(net);
    }

    /// Validates the netlist and computes the evaluation order.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] for dangling references, unconnected
    /// flops, duplicate names, bad gate arity or combinational loops.
    pub fn freeze(mut self) -> Result<Self, NetlistError> {
        // Duplicate names.
        if self.by_name.len() != self.names.len() {
            let mut seen = HashMap::new();
            for name in &self.names {
                if seen.insert(name.clone(), ()).is_some() {
                    return Err(NetlistError::DuplicateName { name: name.clone() });
                }
            }
        }
        let n = self.nodes.len() as u32;
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Gate { kind, inputs } => {
                    let min = match kind {
                        GateKind::Not | GateKind::Buf => 1,
                        _ => 2,
                    };
                    if inputs.len() < min
                        || (matches!(kind, GateKind::Not | GateKind::Buf) && inputs.len() != 1)
                    {
                        return Err(NetlistError::BadArity {
                            name: self.names[i].clone(),
                        });
                    }
                    if inputs.iter().any(|x| x.0 >= n) {
                        return Err(NetlistError::DanglingNet {
                            at: self.names[i].clone(),
                        });
                    }
                }
                Node::Dff { d, .. } => {
                    if *d == UNCONNECTED {
                        return Err(NetlistError::UnconnectedDff {
                            name: self.names[i].clone(),
                        });
                    }
                    if d.0 >= n {
                        return Err(NetlistError::DanglingNet {
                            at: self.names[i].clone(),
                        });
                    }
                }
                Node::Input | Node::Const(_) => {}
            }
        }
        for &out in &self.outputs {
            if out.0 >= n {
                return Err(NetlistError::UnknownOutput {
                    name: format!("{out}"),
                });
            }
        }

        // Kahn's algorithm over the combinational core. Flip-flop outputs
        // act as sources; flip-flop *inputs* are sinks (no edge).
        let mut in_degree = vec![0usize; self.nodes.len()];
        let mut dependents: Vec<Vec<u32>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::Gate { inputs, .. } = node {
                for input in inputs {
                    dependents[input.0 as usize].push(i as u32);
                    in_degree[i] += 1;
                }
            }
        }
        let mut ready: Vec<u32> = (0..self.nodes.len() as u32)
            .filter(|&i| in_degree[i as usize] == 0)
            .collect();
        let mut topo = Vec::new();
        let mut visited = 0usize;
        while let Some(next) = ready.pop() {
            visited += 1;
            if matches!(self.nodes[next as usize], Node::Gate { .. }) {
                topo.push(NetId(next));
            }
            for &d in &dependents[next as usize] {
                in_degree[d as usize] -= 1;
                if in_degree[d as usize] == 0 {
                    ready.push(d);
                }
            }
        }
        if visited != self.nodes.len() {
            let on = in_degree
                .iter()
                .position(|&d| d > 0)
                .map(|i| self.names[i].clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalLoop { on });
        }
        self.topo = topo;
        self.frozen = true;
        Ok(self)
    }

    /// The circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets (including inputs, constants and flops).
    pub fn net_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of logic gates.
    pub fn gate_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Gate { .. }))
            .count()
    }

    /// Number of D flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// `true` when the circuit has no flip-flops.
    pub fn is_combinational(&self) -> bool {
        self.dffs.is_empty()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary outputs, in declaration order.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Flip-flop output nets, in declaration order.
    pub fn dffs(&self) -> &[NetId] {
        &self.dffs
    }

    /// The node driving a net.
    pub fn node(&self, net: NetId) -> &Node {
        &self.nodes[net.0 as usize]
    }

    /// The name of a net.
    pub fn net_name(&self, net: NetId) -> &str {
        &self.names[net.0 as usize]
    }

    /// Looks a net up by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// All nets in id order.
    pub fn nets(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nodes.len() as u32).map(NetId)
    }

    /// Gate nets in evaluation (topological) order.
    ///
    /// # Panics
    ///
    /// Panics if the netlist was not frozen.
    pub fn topo_order(&self) -> &[NetId] {
        assert!(self.frozen, "netlist must be frozen first");
        &self.topo
    }

    /// Fan-out table: for every net, the nets of the gates/flops reading it.
    pub fn fanouts(&self) -> Vec<Vec<NetId>> {
        let mut fanouts = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                Node::Gate { inputs, .. } => {
                    for input in inputs {
                        fanouts[input.0 as usize].push(NetId(i as u32));
                    }
                }
                Node::Dff { d, .. } => fanouts[d.0 as usize].push(NetId(i as u32)),
                _ => {}
            }
        }
        fanouts
    }

    /// Removes nets that cannot reach any primary output: dead gates,
    /// unread constants and unread flip-flops. Primary inputs are always
    /// kept (interface contract). Returns a fresh, unfrozen netlist.
    ///
    /// Synthesis runs this sweep so the fault universe contains no
    /// unobservable-by-construction sites.
    pub fn sweep_dead(&self) -> Netlist {
        // Mark everything reachable backwards from the outputs.
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NetId> = self.outputs.clone();
        while let Some(net) = stack.pop() {
            let slot = net.0 as usize;
            if live[slot] {
                continue;
            }
            live[slot] = true;
            match &self.nodes[slot] {
                Node::Gate { inputs, .. } => stack.extend(inputs.iter().copied()),
                Node::Dff { d, .. } => stack.push(*d),
                Node::Input | Node::Const(_) => {}
            }
        }
        for &input in &self.inputs {
            live[input.0 as usize] = true;
        }
        // Precompute the id map (insertion order preserves ids even for
        // forward references, which are legal around flip-flops).
        let mut remap: HashMap<NetId, NetId> = HashMap::new();
        let mut counter = 0u32;
        for net in self.nets() {
            if live[net.0 as usize] {
                remap.insert(net, NetId(counter));
                counter += 1;
            }
        }
        let mut swept = Netlist::new(self.name.clone());
        for net in self.nets() {
            if !live[net.0 as usize] {
                continue;
            }
            let name = self.names[net.0 as usize].clone();
            let new = match &self.nodes[net.0 as usize] {
                Node::Input => swept.add_input(name),
                Node::Const(v) => swept.add_const(name, *v),
                Node::Dff { init, .. } => swept.add_dff(name, *init),
                Node::Gate { kind, inputs } => {
                    // Live gates only read live nets (reachability is
                    // transitive).
                    let mapped = inputs.iter().map(|i| remap[i]).collect();
                    swept.add_gate(name, *kind, mapped)
                }
            };
            debug_assert_eq!(new, remap[&net], "sweep id mapping must agree");
        }
        for net in self.nets() {
            if let (true, Node::Dff { d, .. }) = (live[net.0 as usize], &self.nodes[net.0 as usize]) {
                swept.connect_dff(remap[&net], remap[d]);
            }
        }
        for &output in &self.outputs {
            swept.mark_output(remap[&output]);
        }
        swept
    }

    /// Logic depth: the longest input→output gate path.
    pub fn depth(&self) -> usize {
        assert!(self.frozen, "netlist must be frozen first");
        let mut level = vec![0usize; self.nodes.len()];
        for &g in &self.topo {
            if let Node::Gate { inputs, .. } = self.node(g) {
                level[g.0 as usize] = inputs
                    .iter()
                    .map(|i| level[i.0 as usize])
                    .max()
                    .unwrap_or(0)
                    + 1;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gate() -> Netlist {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate("g1", GateKind::And, vec![a, b]);
        let g2 = nl.add_gate("g2", GateKind::Not, vec![g1]);
        nl.mark_output(g2);
        nl
    }

    #[test]
    fn builds_and_freezes() {
        let nl = two_gate().freeze().unwrap();
        assert_eq!(nl.net_count(), 4);
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.dff_count(), 0);
        assert!(nl.is_combinational());
        assert_eq!(nl.depth(), 2);
        assert_eq!(nl.topo_order().len(), 2);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let nl = two_gate().freeze().unwrap();
        let topo = nl.topo_order();
        let pos = |name: &str| {
            topo.iter()
                .position(|&n| nl.net_name(n) == name)
                .unwrap()
        };
        assert!(pos("g1") < pos("g2"));
    }

    #[test]
    fn dff_breaks_cycles() {
        let mut nl = Netlist::new("flop");
        let _clk_free = nl.add_input("en");
        let q = nl.add_dff("q", false);
        let d = nl.add_gate("d", GateKind::Not, vec![q]);
        nl.connect_dff(q, d);
        nl.mark_output(q);
        let nl = nl.freeze().unwrap();
        assert_eq!(nl.dff_count(), 1);
        assert!(!nl.is_combinational());
    }

    #[test]
    fn detects_combinational_loop() {
        let mut nl = Netlist::new("loop");
        let a = nl.add_input("a");
        // g1 and g2 feed each other.
        let g1 = nl.add_gate("g1", GateKind::And, vec![a, NetId(2)]);
        let g2 = nl.add_gate("g2", GateKind::Or, vec![g1, a]);
        let _ = g2;
        nl.mark_output(g1);
        assert!(matches!(
            nl.freeze(),
            Err(NetlistError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn detects_unconnected_dff() {
        let mut nl = Netlist::new("bad");
        let _q = nl.add_dff("q", false);
        assert!(matches!(
            nl.freeze(),
            Err(NetlistError::UnconnectedDff { .. })
        ));
    }

    #[test]
    fn detects_bad_arity() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        nl.add_gate("g", GateKind::And, vec![a]);
        assert!(matches!(nl.freeze(), Err(NetlistError::BadArity { .. })));

        let mut nl = Netlist::new("bad2");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        nl.add_gate("g", GateKind::Not, vec![a, b]);
        assert!(matches!(nl.freeze(), Err(NetlistError::BadArity { .. })));
    }

    #[test]
    fn detects_duplicate_name() {
        let mut nl = Netlist::new("dup");
        nl.add_input("a");
        nl.add_input("a");
        assert!(matches!(
            nl.freeze(),
            Err(NetlistError::DuplicateName { .. })
        ));
    }

    #[test]
    fn gate_eval_words() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.eval_words(&[a, b]) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.eval_words(&[a, b]) & 0xF, 0b1110);
        assert_eq!(GateKind::Nand.eval_words(&[a, b]) & 0xF, 0b0111);
        assert_eq!(GateKind::Nor.eval_words(&[a, b]) & 0xF, 0b0001);
        assert_eq!(GateKind::Xor.eval_words(&[a, b]) & 0xF, 0b0110);
        assert_eq!(GateKind::Xnor.eval_words(&[a, b]) & 0xF, 0b1001);
        assert_eq!(GateKind::Not.eval_words(&[a]) & 0xF, 0b0011);
        assert_eq!(GateKind::Buf.eval_words(&[a]) & 0xF, 0b1100);
    }

    #[test]
    fn gate_eval_multi_input() {
        let w = [0b1111u64, 0b1100, 0b1010];
        assert_eq!(GateKind::And.eval_words(&w) & 0xF, 0b1000);
        assert_eq!(GateKind::Xor.eval_words(&w) & 0xF, 0b1001);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
    }

    #[test]
    fn fanout_table() {
        let nl = two_gate().freeze().unwrap();
        let fanouts = nl.fanouts();
        let a = nl.net_by_name("a").unwrap();
        let g1 = nl.net_by_name("g1").unwrap();
        assert_eq!(fanouts[a.0 as usize], vec![g1]);
        assert_eq!(fanouts[g1.0 as usize].len(), 1);
    }

    #[test]
    fn name_lookup() {
        let nl = two_gate().freeze().unwrap();
        let g1 = nl.net_by_name("g1").unwrap();
        assert_eq!(nl.net_name(g1), "g1");
        assert!(nl.net_by_name("zz").is_none());
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let _orphan_const = nl.add_const("k0", false);
        let dead = nl.add_gate("dead", GateKind::And, vec![a, b]);
        let _deader = nl.add_gate("deader", GateKind::Not, vec![dead]);
        let live = nl.add_gate("live", GateKind::Or, vec![a, b]);
        nl.mark_output(live);
        let swept = nl.sweep_dead().freeze().unwrap();
        assert_eq!(swept.gate_count(), 1);
        assert_eq!(swept.inputs().len(), 2, "inputs always survive");
        assert!(swept.net_by_name("k0").is_none());
        assert!(swept.net_by_name("dead").is_none());
        assert!(swept.net_by_name("live").is_some());
    }

    #[test]
    fn sweep_keeps_flop_feedback_and_forward_refs() {
        // q = DFF(d); d computed from q (declared after q).
        let mut nl = Netlist::new("fb");
        let en = nl.add_input("en");
        let q = nl.add_dff("q", true);
        let d = nl.add_gate("d", GateKind::Xor, vec![q, en]);
        nl.connect_dff(q, d);
        nl.mark_output(q);
        let _dead = nl.add_gate("dead", GateKind::Not, vec![en]);
        let swept = nl.sweep_dead().freeze().unwrap();
        assert_eq!(swept.dff_count(), 1);
        assert_eq!(swept.gate_count(), 1);
        // Behaviour preserved: toggles from init=1.
        let mut sim = crate::sim::LogicSim::new(&swept);
        let none = crate::sim::Injections::none();
        let q0 = sim.step_broadcast(&[true], &none)[0] & 1;
        let q1 = sim.step_broadcast(&[true], &none)[0] & 1;
        assert_eq!((q0, q1), (1, 0));
    }

    #[test]
    fn sweep_preserves_live_everything() {
        let nl = two_gate().freeze().unwrap();
        let swept = nl.sweep_dead().freeze().unwrap();
        assert_eq!(swept.gate_count(), nl.gate_count());
        assert_eq!(swept.net_count(), nl.net_count());
    }
}
