//! Single stuck-at fault model and structural fault collapsing.
//!
//! The fault universe follows the classic convention:
//!
//! * a **stem** fault on every net (gate output, input, constant, flop
//!   output), stuck-at-0 and stuck-at-1;
//! * a **branch** fault on every gate/flop input pin whose source net has
//!   fan-out greater than one (a fan-out-free pin is electrically the same
//!   site as its stem).
//!
//! [`collapse`] merges structurally equivalent faults with the standard
//! gate-local rules (e.g. any AND input s-a-0 ≡ the AND output s-a-0;
//! NOT input faults ≡ complemented output faults; BUF input ≡ output),
//! keeping one representative per class — the usual "collapsed fault
//! list" that fault-coverage percentages are quoted against.

use crate::netlist::{GateKind, NetId, Netlist, Node};
use std::fmt;

/// Where a stuck-at fault lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultSite {
    /// On a net (stem).
    Net(NetId),
    /// On one input pin of the gate/flop driving `gate` (branch).
    Pin {
        /// The reading gate's output net.
        gate: NetId,
        /// Pin index into that gate's input list.
        pin: u32,
    },
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fault {
    /// Location.
    pub site: FaultSite,
    /// `true` = stuck-at-1, `false` = stuck-at-0.
    pub stuck_at_one: bool,
}

impl Fault {
    /// Stem stuck-at-0 on `net`.
    pub fn net_sa0(net: NetId) -> Self {
        Fault {
            site: FaultSite::Net(net),
            stuck_at_one: false,
        }
    }

    /// Stem stuck-at-1 on `net`.
    pub fn net_sa1(net: NetId) -> Self {
        Fault {
            site: FaultSite::Net(net),
            stuck_at_one: true,
        }
    }

    /// Renders the fault against a netlist (e.g. `G10 s-a-1`,
    /// `G22.pin0 s-a-0`).
    pub fn describe(&self, nl: &Netlist) -> String {
        let sa = if self.stuck_at_one { "s-a-1" } else { "s-a-0" };
        match self.site {
            FaultSite::Net(n) => format!("{} {}", nl.net_name(n), sa),
            FaultSite::Pin { gate, pin } => {
                format!("{}.pin{} {}", nl.net_name(gate), pin, sa)
            }
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sa = if self.stuck_at_one { "s-a-1" } else { "s-a-0" };
        match self.site {
            FaultSite::Net(n) => write!(f, "{n} {sa}"),
            FaultSite::Pin { gate, pin } => write!(f, "{gate}.pin{pin} {sa}"),
        }
    }
}

/// Enumerates the full (uncollapsed) fault universe.
pub fn full_faults(nl: &Netlist) -> Vec<Fault> {
    let fanouts = nl.fanouts();
    let mut faults = Vec::new();
    for net in nl.nets() {
        faults.push(Fault::net_sa0(net));
        faults.push(Fault::net_sa1(net));
    }
    for net in nl.nets() {
        let pins: Vec<(NetId, u32)> = match nl.node(net) {
            Node::Gate { inputs, .. } => inputs
                .iter()
                .enumerate()
                .map(|(pin, _)| (net, pin as u32))
                .collect(),
            Node::Dff { .. } => vec![(net, 0)],
            _ => Vec::new(),
        };
        for (gate, pin) in pins {
            let src = match nl.node(net) {
                Node::Gate { inputs, .. } => inputs[pin as usize],
                Node::Dff { d, .. } => *d,
                _ => unreachable!(),
            };
            if fanouts[src.0 as usize].len() > 1 {
                for stuck in [false, true] {
                    faults.push(Fault {
                        site: FaultSite::Pin { gate, pin },
                        stuck_at_one: stuck,
                    });
                }
            }
        }
    }
    faults
}

/// Union-find over fault indices.
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    pub(crate) fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller index as representative for determinism.
            let (keep, drop) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[drop] = keep;
        }
    }
}

/// The fault site the standard universe uses for "input `pin` of the
/// gate driving `net`": the branch (pin) fault when the source net fans
/// out, the source's stem fault otherwise.
pub(crate) fn effective_input_fault(
    fanouts: &[Vec<NetId>],
    net: NetId,
    pin: u32,
    src: NetId,
    stuck: bool,
) -> Fault {
    if fanouts[src.0 as usize].len() > 1 {
        Fault {
            site: FaultSite::Pin { gate: net, pin },
            stuck_at_one: stuck,
        }
    } else {
        Fault {
            site: FaultSite::Net(src),
            stuck_at_one: stuck,
        }
    }
}

/// The structural-equivalence union-find over `faults` (the machinery
/// behind [`collapse`], shared with the dominance analysis in
/// [`crate::dominance`]).
pub(crate) fn equivalence_union(nl: &Netlist, faults: &[Fault]) -> UnionFind {
    use std::collections::HashMap;
    let index: HashMap<Fault, usize> = faults
        .iter()
        .enumerate()
        .map(|(i, &f)| (f, i))
        .collect();
    let fanouts = nl.fanouts();
    let mut uf = UnionFind::new(faults.len());

    let input_fault = |net: NetId, pin: u32, src: NetId, stuck: bool| -> Fault {
        effective_input_fault(&fanouts, net, pin, src, stuck)
    };

    let mut merge = |a: Fault, b: Fault| {
        if let (Some(&ia), Some(&ib)) = (index.get(&a), index.get(&b)) {
            uf.union(ia, ib);
        }
    };

    for net in nl.nets() {
        match nl.node(net) {
            Node::Gate { kind, inputs } => {
                for (pin, &src) in inputs.iter().enumerate() {
                    let pin = pin as u32;
                    match kind {
                        GateKind::And => {
                            merge(input_fault(net, pin, src, false), Fault::net_sa0(net));
                        }
                        GateKind::Nand => {
                            merge(input_fault(net, pin, src, false), Fault::net_sa1(net));
                        }
                        GateKind::Or => {
                            merge(input_fault(net, pin, src, true), Fault::net_sa1(net));
                        }
                        GateKind::Nor => {
                            merge(input_fault(net, pin, src, true), Fault::net_sa0(net));
                        }
                        GateKind::Not => {
                            merge(input_fault(net, pin, src, false), Fault::net_sa1(net));
                            merge(input_fault(net, pin, src, true), Fault::net_sa0(net));
                        }
                        GateKind::Buf => {
                            merge(input_fault(net, pin, src, false), Fault::net_sa0(net));
                            merge(input_fault(net, pin, src, true), Fault::net_sa1(net));
                        }
                        GateKind::Xor | GateKind::Xnor => {
                            // No structural equivalence through XOR-family
                            // gates.
                        }
                    }
                }
            }
            Node::Dff { d, .. } => {
                // The D pin behaves as a buffer into the state element.
                merge(input_fault(net, 0, *d, false), Fault::net_sa0(net));
                merge(input_fault(net, 0, *d, true), Fault::net_sa1(net));
            }
            _ => {}
        }
    }
    uf
}

/// Collapses the fault list into structural-equivalence representatives.
///
/// Rules applied per gate, with the *effective* input site being the pin
/// fault when the source net fans out, and the stem fault otherwise:
///
/// | gate | input fault | ≡ output fault |
/// |------|-------------|----------------|
/// | AND  | s-a-0       | s-a-0          |
/// | NAND | s-a-0       | s-a-1          |
/// | OR   | s-a-1       | s-a-1          |
/// | NOR  | s-a-1       | s-a-0          |
/// | NOT  | s-a-v       | s-a-¬v         |
/// | BUF / DFF-D | s-a-v | s-a-v         |
///
/// The result preserves the input order of representatives.
pub fn collapse(nl: &Netlist, faults: &[Fault]) -> Vec<Fault> {
    let mut uf = equivalence_union(nl, faults);
    let mut kept = Vec::new();
    for (i, &fault) in faults.iter().enumerate() {
        if uf.find(i) == i {
            kept.push(fault);
        }
    }
    kept
}

/// Convenience: the collapsed fault list of a netlist.
pub fn collapsed_faults(nl: &Netlist) -> Vec<Fault> {
    collapse(nl, &full_faults(nl))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{parse_bench, C17};
    use crate::netlist::{GateKind, Netlist};

    #[test]
    fn full_universe_counts() {
        // y = AND(a, b): 3 nets × 2 faults; no fanout > 1 → no pin faults.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate("y", GateKind::And, vec![a, b]);
        nl.mark_output(y);
        let nl = nl.freeze().unwrap();
        assert_eq!(full_faults(&nl).len(), 6);
    }

    #[test]
    fn branch_faults_only_on_fanout() {
        // a feeds two gates → its two branch pins get faults.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y1 = nl.add_gate("y1", GateKind::And, vec![a, b]);
        let y2 = nl.add_gate("y2", GateKind::Or, vec![a, b]);
        nl.mark_output(y1);
        nl.mark_output(y2);
        let nl = nl.freeze().unwrap();
        // Nets: a,b,y1,y2 → 8 stem faults. a,b each fan out to 2 pins →
        // 4 pins × 2 = 8 branch faults.
        assert_eq!(full_faults(&nl).len(), 16);
    }

    #[test]
    fn and_collapse_merges_sa0() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate("y", GateKind::And, vec![a, b]);
        nl.mark_output(y);
        let nl = nl.freeze().unwrap();
        let collapsed = collapsed_faults(&nl);
        // Classes: {a0,b0,y0}, {a1}, {b1}, {y1} → 4 representatives.
        assert_eq!(collapsed.len(), 4);
    }

    #[test]
    fn inverter_chain_collapses_fully() {
        // a -> NOT -> NOT -> y : every fault equivalent to one of the two
        // polarities at the head of the chain.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let n1 = nl.add_gate("n1", GateKind::Not, vec![a]);
        let n2 = nl.add_gate("n2", GateKind::Not, vec![n1]);
        nl.mark_output(n2);
        let nl = nl.freeze().unwrap();
        let collapsed = collapsed_faults(&nl);
        assert_eq!(collapsed.len(), 2);
    }

    #[test]
    fn xor_does_not_collapse() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate("y", GateKind::Xor, vec![a, b]);
        nl.mark_output(y);
        let nl = nl.freeze().unwrap();
        assert_eq!(collapsed_faults(&nl).len(), 6);
    }

    #[test]
    fn c17_collapsed_size_matches_literature() {
        // c17's collapsed single-stuck-at list is famously 22 faults.
        let nl = parse_bench(C17, "c17").unwrap();
        let full = full_faults(&nl);
        let collapsed = collapse(&nl, &full);
        assert!(collapsed.len() < full.len());
        assert_eq!(collapsed.len(), 22, "c17 collapsed fault count");
    }

    #[test]
    fn representatives_are_stable_and_unique() {
        let nl = parse_bench(C17, "c17").unwrap();
        let c1 = collapsed_faults(&nl);
        let c2 = collapsed_faults(&nl);
        assert_eq!(c1, c2, "collapsing must be deterministic");
        let mut sorted = c1.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), c1.len());
    }

    #[test]
    fn describe_and_display() {
        let nl = parse_bench(C17, "c17").unwrap();
        let g10 = nl.net_by_name("G10").unwrap();
        let f = Fault::net_sa1(g10);
        assert_eq!(f.describe(&nl), "G10 s-a-1");
        assert!(f.to_string().contains("s-a-1"));
    }

    #[test]
    fn dff_d_pin_collapses_as_buffer() {
        let src = "
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";
        let nl = parse_bench(src, "t").unwrap();
        let full = full_faults(&nl);
        let collapsed = collapse(&nl, &full);
        // d has fanout 1 (only the flop) → d stem ≡ q stem.
        assert!(collapsed.len() < full.len());
    }
}
