//! # musa-netlist — gate-level netlists and stuck-at fault simulation
//!
//! The gate-level substrate of the `musa` workspace: netlist data
//! structure with `.bench` I/O, 64-lane bit-parallel logic simulation,
//! the single stuck-at fault model with structural collapsing and
//! dominance-based fault-list reduction ([`reduce_faults`]), and fault
//! simulation engines (parallel-pattern for combinational circuits,
//! parallel-fault for sequential ones).
//!
//! This replaces the commercial gate-level flow the DATE'05 paper relied
//! on — see the workspace `DESIGN.md` §3 for the substitution notes.
//!
//! # Example: fault coverage of random patterns on c17
//!
//! ```
//! use musa_netlist::{collapsed_faults, fault_simulate, parse_bench, Pattern, C17};
//!
//! let nl = parse_bench(C17, "c17")?;
//! let faults = collapsed_faults(&nl);
//! let vectors: Vec<Pattern> = (0..16u64)
//!     .map(|p| (0..5).map(|i| (p * 7 + i) % 3 == 0).collect())
//!     .collect();
//! let result = fault_simulate(&nl, &faults, &vectors);
//! println!("coverage = {:.1}%", 100.0 * result.coverage());
//! assert!(result.coverage() > 0.0);
//! # Ok::<(), musa_netlist::BenchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod dominance;
mod fault;
mod fsim;
mod netlist;
mod sim;
mod testability;

pub use bench::{parse_bench, write_bench, BenchError, C17};
pub use dominance::{reduce_faults, FaultPlan, FaultReduction};
pub use fault::{collapse, collapsed_faults, full_faults, Fault, FaultSite};
pub use fsim::{
    fault_simulate, fault_simulate_reduced, fault_simulate_sessions,
    fault_simulate_sessions_reduced, good_outputs, FaultSimResult, Pattern,
};
pub use netlist::{GateKind, NetId, Netlist, NetlistError, Node};
pub use sim::{Injections, LogicSim};
pub use testability::{Testability, UNREACHABLE};
