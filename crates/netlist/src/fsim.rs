//! Stuck-at fault simulation with fault dropping.
//!
//! Two engines behind one entry point, [`fault_simulate`]:
//!
//! * **combinational** circuits use *parallel-pattern single-fault
//!   propagation* (PPSFP): 64 test patterns per pass, one fault at a
//!   time, with fault dropping;
//! * **sequential** circuits use *parallel-fault* simulation: the good
//!   machine in lane 0 and up to 63 faulty machines in the remaining
//!   lanes, all driven by the same vector sequence from the reset state.
//!
//! Both record, for every fault, the index of the **first** detecting
//! vector, from which coverage-versus-length curves are derived.

use crate::dominance::{FaultPlan, FaultReduction};
use crate::fault::Fault;
use crate::netlist::Netlist;
use crate::sim::{Injections, LogicSim};

/// One primary-input assignment (one bit per PI, in `Netlist::inputs`
/// order).
pub type Pattern = Vec<bool>;

/// Result of a fault-simulation run.
#[derive(Debug, Clone)]
pub struct FaultSimResult {
    /// The graded fault list (as passed in).
    pub faults: Vec<Fault>,
    /// For every fault, the index of the first detecting vector.
    pub first_detected: Vec<Option<usize>>,
    /// Number of vectors applied.
    pub vectors_applied: usize,
    /// Number of faults that actually occupied simulation lanes. Equal
    /// to `faults.len()` for the full engines; smaller under dominance
    /// reduction ([`fault_simulate_reduced`]), where credited faults
    /// never enter a lane.
    pub faults_simulated: usize,
}

impl FaultSimResult {
    /// Number of detected faults.
    pub fn detected_count(&self) -> usize {
        self.first_detected.iter().filter(|d| d.is_some()).count()
    }

    /// Final fault coverage in `[0, 1]` (detected / total).
    ///
    /// Returns 1.0 for an empty fault list (nothing to detect).
    pub fn coverage(&self) -> f64 {
        if self.faults.is_empty() {
            1.0
        } else {
            self.detected_count() as f64 / self.faults.len() as f64
        }
    }

    /// Cumulative coverage after each applied vector:
    /// `curve()[t]` = coverage achieved by vectors `0..=t`.
    ///
    /// For an empty fault list the curve is 1.0 throughout, matching
    /// [`FaultSimResult::coverage`] (nothing to detect), so
    /// `curve.last()` always agrees with the final coverage.
    pub fn coverage_curve(&self) -> Vec<f64> {
        if self.faults.is_empty() {
            return vec![1.0; self.vectors_applied];
        }
        let total = self.faults.len() as f64;
        let mut per_vector = vec![0usize; self.vectors_applied];
        for first in self.first_detected.iter().flatten() {
            // A first-detection index at or past `vectors_applied` means
            // a caller's session accounting drifted; silently skipping
            // it would under-count coverage.
            debug_assert!(
                *first < per_vector.len(),
                "first_detected index {first} >= vectors_applied {}",
                self.vectors_applied
            );
            if *first < per_vector.len() {
                per_vector[*first] += 1;
            }
        }
        let mut cumulative = 0usize;
        per_vector
            .into_iter()
            .map(|d| {
                cumulative += d;
                cumulative as f64 / total
            })
            .collect()
    }

    /// The undetected faults.
    pub fn undetected(&self) -> Vec<Fault> {
        self.faults
            .iter()
            .zip(&self.first_detected)
            .filter(|(_, d)| d.is_none())
            .map(|(&f, _)| f)
            .collect()
    }
}

/// Simulates `faults` against `vectors` and reports first detections.
///
/// Dispatches to PPSFP for combinational circuits and parallel-fault for
/// sequential ones. Detection means: some primary output differs from the
/// good circuit at some vector (sequential machines start from reset and
/// never re-synchronise).
///
/// # Panics
///
/// Panics if any pattern length differs from the circuit's input count.
pub fn fault_simulate(nl: &Netlist, faults: &[Fault], vectors: &[Pattern]) -> FaultSimResult {
    for v in vectors {
        assert_eq!(v.len(), nl.inputs().len(), "pattern width mismatch");
    }
    let first_detected = if nl.is_combinational() {
        ppsfp(nl, faults, vectors)
    } else {
        parallel_fault(nl, faults, vectors)
    };
    FaultSimResult {
        faults: faults.to_vec(),
        first_detected,
        vectors_applied: vectors.len(),
        faults_simulated: faults.len(),
    }
}

/// Simulates `faults` against a *test set*: several vector sequences,
/// each applied from the reset state, with fault dropping across
/// sessions. First-detection indices are cumulative over the
/// concatenation of all sessions.
///
/// # Panics
///
/// Panics if any pattern length differs from the circuit's input count.
pub fn fault_simulate_sessions(
    nl: &Netlist,
    faults: &[Fault],
    sessions: &[Vec<Pattern>],
) -> FaultSimResult {
    let indices: Vec<usize> = (0..faults.len()).collect();
    let _trace = musa_trace::span("fault_simulate");
    let (first, total) = simulate_subset_sessions(nl, faults, &indices, sessions);
    let mut first_detected = vec![None; faults.len()];
    for (slot, &fi) in indices.iter().enumerate() {
        first_detected[fi] = first[slot];
    }
    FaultSimResult {
        faults: faults.to_vec(),
        first_detected,
        vectors_applied: total,
        faults_simulated: faults.len(),
    }
}

/// Simulates the faults at `indices` (into `faults`) across `sessions`
/// with fault dropping; returns their cumulative first-detection
/// indices (parallel to `indices`) and the total vector count.
fn simulate_subset_sessions(
    nl: &Netlist,
    faults: &[Fault],
    indices: &[usize],
    sessions: &[Vec<Pattern>],
) -> (Vec<Option<usize>>, usize) {
    let mut first: Vec<Option<usize>> = vec![None; indices.len()];
    let mut base = 0usize;
    // Slots (into `indices`) still alive.
    let mut alive: Vec<usize> = (0..indices.len()).collect();
    for session in sessions {
        if alive.is_empty() {
            base += session.len();
            continue;
        }
        let subset: Vec<Fault> = alive.iter().map(|&s| faults[indices[s]]).collect();
        let result = fault_simulate(nl, &subset, session);
        let mut still = Vec::with_capacity(alive.len());
        for (lane, &slot) in alive.iter().enumerate() {
            match result.first_detected[lane] {
                Some(t) => first[slot] = Some(base + t),
                None => still.push(slot),
            }
        }
        alive = still;
        base += session.len();
    }
    (first, base)
}

/// [`fault_simulate`] over a dominance-reduced fault list: only
/// representatives (and residuals) occupy lanes, while the result
/// still covers **every** fault of the list. See
/// [`fault_simulate_sessions_reduced`] for the exactness contract.
///
/// # Panics
///
/// Panics if any pattern length differs from the circuit's input count.
pub fn fault_simulate_reduced(
    nl: &Netlist,
    reduction: &FaultReduction,
    vectors: &[Pattern],
) -> FaultSimResult {
    fault_simulate_sessions_reduced(nl, reduction, std::slice::from_ref(&vectors.to_vec()))
}

/// [`fault_simulate_sessions`] over a dominance-reduced fault list.
///
/// Four stages:
///
/// 1. the reduction's kept representatives are simulated exactly as the
///    full engine would simulate them (per-fault results are
///    independent of batch composition, so their first-detection
///    indices are bit-identical to a full run);
/// 2. observed faults (stems with a NOT/BUF-only path to a primary
///    output) get their **exact** first-detection index — or their
///    undetected verdict — from the good-machine output trace, since
///    such a fault is detected precisely at its first excitation;
/// 3. every dropped fault whose credit set saw a detection is credited
///    the earliest such index — by dominance the same test prefix
///    detects it, so the *verdict* is sound and the index is an upper
///    bound on its true first detection;
/// 4. dropped faults with **no** detected credit source are residually
///    simulated, so no verdict is ever guessed.
///
/// Hence `detected_count()`, `coverage()` and `undetected()` match full
/// simulation exactly, while [`FaultSimResult::faults_simulated`]
/// (kept + residuals) stays below `faults_total` whenever credit
/// lands. Only credited faults' `first_detected` indices may exceed
/// their full-simulation values; consumers reading coverage-curve
/// interiors should use the full engine.
///
/// # Panics
///
/// Panics if any pattern length differs from the circuit's input count.
pub fn fault_simulate_sessions_reduced(
    nl: &Netlist,
    reduction: &FaultReduction,
    sessions: &[Vec<Pattern>],
) -> FaultSimResult {
    let faults = reduction.faults();
    let kept = reduction.simulated_indices();
    let (kept_first, total) = {
        let _trace = musa_trace::span("fault_simulate");
        simulate_subset_sessions(nl, faults, &kept, sessions)
    };
    let mut first_detected: Vec<Option<usize>> = vec![None; faults.len()];
    for (slot, &fi) in kept.iter().enumerate() {
        first_detected[fi] = kept_first[slot];
    }

    // Observed faults: exact results from the good-machine output
    // trace (a fault on a directly-observed net is detected at its
    // first excitation, which the good trace pinpoints).
    let observed: Vec<(usize, usize, bool)> = (0..faults.len())
        .filter_map(|i| match *reduction.plan(i) {
            FaultPlan::Observe { output, expect } => Some((i, output, expect)),
            _ => None,
        })
        .collect();
    if !observed.is_empty() {
        let mut base = 0usize;
        for session in sessions {
            if observed.iter().all(|&(i, ..)| first_detected[i].is_some()) {
                base += session.len();
                continue;
            }
            let good = good_outputs(nl, session);
            for &(i, output, expect) in &observed {
                if first_detected[i].is_some() {
                    continue;
                }
                if let Some(t) = good.iter().position(|outs| outs[output] == expect) {
                    first_detected[i] = Some(base + t);
                }
            }
            base += session.len();
        }
    }

    // Credit dropped faults from their dominated representatives.
    let mut residual: Vec<usize> = Vec::new();
    for i in 0..faults.len() {
        if let FaultPlan::Credit(sources) = reduction.plan(i) {
            match sources.iter().filter_map(|&s| first_detected[s]).min() {
                Some(t) => first_detected[i] = Some(t),
                None => residual.push(i),
            }
        }
    }

    // Residual pass: uncredited drops get real lanes — their verdict
    // (typically "undetected") is never inferred.
    let _trace = musa_trace::span("fault_residual");
    let (residual_first, residual_total) =
        simulate_subset_sessions(nl, faults, &residual, sessions);
    debug_assert!(residual.is_empty() || residual_total == total);
    for (slot, &fi) in residual.iter().enumerate() {
        first_detected[fi] = residual_first[slot];
    }

    FaultSimResult {
        faults: faults.to_vec(),
        first_detected,
        vectors_applied: total,
        faults_simulated: kept.len() + residual.len(),
    }
}

/// Good-circuit output transcript (used by test generators for response
/// comparison and by the sequential engine internally).
pub fn good_outputs(nl: &Netlist, vectors: &[Pattern]) -> Vec<Vec<bool>> {
    let mut sim = LogicSim::new(nl);
    sim.reset();
    let none = Injections::none();
    vectors
        .iter()
        .map(|v| {
            sim.step_broadcast(v, &none)
                .into_iter()
                .map(|w| w & 1 == 1)
                .collect()
        })
        .collect()
}

/// Parallel-pattern single-fault propagation for combinational circuits.
fn ppsfp(nl: &Netlist, faults: &[Fault], vectors: &[Pattern]) -> Vec<Option<usize>> {
    let mut first_detected: Vec<Option<usize>> = vec![None; faults.len()];
    let mut sim = LogicSim::new(nl);
    let none = Injections::none();
    let num_inputs = nl.inputs().len();

    for (batch_index, batch) in vectors.chunks(64).enumerate() {
        let base = batch_index * 64;
        // Pack the batch into per-input words: lane k = pattern base+k.
        let mut words = vec![0u64; num_inputs];
        for (lane, pattern) in batch.iter().enumerate() {
            for (i, &bit) in pattern.iter().enumerate() {
                if bit {
                    words[i] |= 1 << lane;
                }
            }
        }
        let lane_mask = if batch.len() == 64 {
            u64::MAX
        } else {
            (1u64 << batch.len()) - 1
        };

        sim.set_inputs(&words);
        sim.eval(&none);
        let good = sim.outputs();

        for (fi, fault) in faults.iter().enumerate() {
            if first_detected[fi].is_some() {
                continue; // fault dropping
            }
            sim.eval(&Injections::single(fault));
            let bad = sim.outputs();
            let mut diff = 0u64;
            for (g, b) in good.iter().zip(&bad) {
                diff |= g ^ b;
            }
            diff &= lane_mask;
            if diff != 0 {
                first_detected[fi] = Some(base + diff.trailing_zeros() as usize);
            }
        }
    }
    first_detected
}

/// Parallel-fault simulation for sequential circuits: lane 0 is the good
/// machine, lanes 1..=63 carry one fault each.
fn parallel_fault(nl: &Netlist, faults: &[Fault], vectors: &[Pattern]) -> Vec<Option<usize>> {
    let mut first_detected: Vec<Option<usize>> = vec![None; faults.len()];
    let mut sim = LogicSim::new(nl);
    let pending: Vec<usize> = (0..faults.len()).collect();

    for chunk in pending.chunks(63) {
        let mut inj = Injections::none();
        for (slot, &fi) in chunk.iter().enumerate() {
            inj.add(&faults[fi], 1u64 << (slot + 1));
        }
        let active_mask = if chunk.len() == 63 {
            !1
        } else {
            ((1u64 << (chunk.len() + 1)) - 1) & !1
        };

        sim.reset();
        let mut detected_lanes = 0u64;
        for (t, pattern) in vectors.iter().enumerate() {
            let outs = sim.step_broadcast(pattern, &inj);
            let mut diff = 0u64;
            for word in outs {
                // Lanes differing from lane 0 (the good machine).
                let good_broadcast = 0u64.wrapping_sub(word & 1);
                diff |= word ^ good_broadcast;
            }
            let newly = diff & active_mask & !detected_lanes;
            if newly != 0 {
                for (slot, &fi) in chunk.iter().enumerate() {
                    if newly >> (slot + 1) & 1 == 1 {
                        first_detected[fi] = Some(t);
                    }
                }
                detected_lanes |= newly;
                if detected_lanes & active_mask == active_mask {
                    break; // whole batch detected
                }
            }
        }
    }
    first_detected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{parse_bench, C17};
    use crate::fault::{collapsed_faults, full_faults, Fault};
    use crate::netlist::{GateKind, Netlist};

    fn exhaustive_patterns(n: usize) -> Vec<Pattern> {
        (0..1u64 << n)
            .map(|p| (0..n).map(|i| (p >> i) & 1 == 1).collect())
            .collect()
    }

    #[test]
    fn c17_exhaustive_reaches_full_coverage() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        let result = fault_simulate(&nl, &faults, &exhaustive_patterns(5));
        assert_eq!(
            result.detected_count(),
            faults.len(),
            "undetected: {:?}",
            result
                .undetected()
                .iter()
                .map(|f| f.describe(&nl))
                .collect::<Vec<_>>()
        );
        assert!((result.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn c17_full_universe_also_covered() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = full_faults(&nl);
        let result = fault_simulate(&nl, &faults, &exhaustive_patterns(5));
        assert_eq!(result.detected_count(), faults.len());
    }

    #[test]
    fn coverage_curve_is_monotone_and_ends_at_coverage() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        let result = fault_simulate(&nl, &faults, &exhaustive_patterns(5));
        let curve = result.coverage_curve();
        assert_eq!(curve.len(), 32);
        for w in curve.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!((curve.last().unwrap() - result.coverage()).abs() < 1e-12);
    }

    #[test]
    fn no_vectors_detects_nothing() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        let result = fault_simulate(&nl, &faults, &[]);
        assert_eq!(result.detected_count(), 0);
        assert_eq!(result.coverage(), 0.0);
        assert!(result.coverage_curve().is_empty());
    }

    #[test]
    fn empty_fault_list_is_fully_covered() {
        let nl = parse_bench(C17, "c17").unwrap();
        let result = fault_simulate(&nl, &[], &exhaustive_patterns(5));
        assert_eq!(result.coverage(), 1.0);
    }

    #[test]
    fn empty_fault_list_curve_is_one_throughout() {
        // Regression: coverage() reports 1.0 for an empty list but the
        // curve used to divide by max(1) and end at 0.0 — the two must
        // agree.
        let nl = parse_bench(C17, "c17").unwrap();
        let result = fault_simulate(&nl, &[], &exhaustive_patterns(5));
        let curve = result.coverage_curve();
        assert_eq!(curve.len(), 32);
        assert!(curve.iter().all(|&c| c == 1.0), "{curve:?}");
        assert_eq!(*curve.last().unwrap(), result.coverage());
        // No vectors: both the curve and the vector count stay empty.
        let empty = fault_simulate(&nl, &[], &[]);
        assert!(empty.coverage_curve().is_empty());
        assert_eq!(empty.coverage(), 1.0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "first_detected index")]
    fn out_of_range_first_detection_fails_loudly_in_debug() {
        // Session-accounting drift (a first-detection index at or past
        // vectors_applied) must not silently under-count coverage.
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        let mut result = fault_simulate(&nl, &faults, &exhaustive_patterns(5));
        result.first_detected[0] = Some(result.vectors_applied);
        let _ = result.coverage_curve();
    }

    #[test]
    fn first_detection_is_earliest() {
        // y = AND(a,b); fault y s-a-0 detected only by a=b=1.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate("y", GateKind::And, vec![a, b]);
        nl.mark_output(y);
        let nl = nl.freeze().unwrap();
        let fault = vec![Fault::net_sa0(y)];
        let vectors: Vec<Pattern> = vec![
            vec![false, false],
            vec![true, true], // first detecting vector: index 1
            vec![true, true],
        ];
        let result = fault_simulate(&nl, &fault, &vectors);
        assert_eq!(result.first_detected[0], Some(1));
    }

    #[test]
    fn detection_across_batch_boundary() {
        // 70 vectors: only vector 68 detects (exercises the second batch).
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y = nl.add_gate("y", GateKind::And, vec![a, b]);
        nl.mark_output(y);
        let nl = nl.freeze().unwrap();
        let fault = vec![Fault::net_sa0(y)];
        let mut vectors: Vec<Pattern> = vec![vec![false, false]; 70];
        vectors[68] = vec![true, true];
        let result = fault_simulate(&nl, &fault, &vectors);
        assert_eq!(result.first_detected[0], Some(68));
    }

    #[test]
    fn sequential_fault_detection() {
        // Toggle flop: q = DFF(xor(q, en)), output q.
        let src = "
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";
        let nl = parse_bench(src, "t").unwrap();
        let faults = collapsed_faults(&nl);
        // en=1 for 4 cycles toggles q: 0,1,0,1 — plenty to expose faults.
        let vectors: Vec<Pattern> = vec![vec![true]; 4];
        let result = fault_simulate(&nl, &faults, &vectors);
        assert!(
            result.detected_count() > 0,
            "at least some faults must be detected"
        );
        // q s-a-1: good q starts 0, faulty shows 1 at t=0.
        let q = nl.net_by_name("q").unwrap();
        let idx = faults
            .iter()
            .position(|f| *f == Fault::net_sa1(q))
            .expect("q s-a-1 must be a representative");
        assert_eq!(result.first_detected[idx], Some(0));
    }

    #[test]
    fn sequential_matches_single_fault_reference() {
        // Cross-check parallel-fault against naive one-fault-at-a-time.
        let src = "
INPUT(a)
INPUT(b)
OUTPUT(q)
OUTPUT(y)
q = DFF(d)
d = AND(a, q2)
q2 = NAND(b, q)
y = OR(q, b)
";
        let nl = parse_bench(src, "m").unwrap();
        let faults = collapsed_faults(&nl);
        let vectors: Vec<Pattern> = vec![
            vec![true, false],
            vec![true, true],
            vec![false, true],
            vec![true, true],
            vec![false, false],
            vec![true, true],
        ];
        let fast = fault_simulate(&nl, &faults, &vectors);

        // Naive reference: run each fault alone in lane 1.
        let good = good_outputs(&nl, &vectors);
        for (fi, fault) in faults.iter().enumerate() {
            let mut sim = LogicSim::new(&nl);
            sim.reset();
            let inj = Injections::single(fault);
            let mut first = None;
            for (t, v) in vectors.iter().enumerate() {
                let outs = sim.step_broadcast(v, &inj);
                let bad: Vec<bool> = outs.iter().map(|w| w & 1 == 1).collect();
                if bad != good[t] {
                    first = Some(t);
                    break;
                }
            }
            assert_eq!(
                fast.first_detected[fi],
                first,
                "fault {} disagrees",
                fault.describe(&nl)
            );
        }
    }

    #[test]
    fn ppsfp_matches_naive_serial_reference() {
        // Regression guard: fault forcing during one injection must not
        // corrupt the applied stimulus for later injections in the same
        // batch (input-net faults are the sensitive case).
        use crate::sim::{Injections, LogicSim};
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = full_faults(&nl);
        let patterns: Vec<Pattern> = (0..20u64)
            .map(|p| (0..5).map(|i| (p.wrapping_mul(0x9E37) >> i) & 1 == 1).collect())
            .collect();
        let fast = fault_simulate(&nl, &faults, &patterns);
        for (fi, fault) in faults.iter().enumerate() {
            let mut first = None;
            for (t, p) in patterns.iter().enumerate() {
                let mut sim = LogicSim::new(&nl);
                sim.set_inputs_broadcast(p);
                sim.eval(&Injections::none());
                let good: Vec<u64> = sim.outputs().iter().map(|w| w & 1).collect();
                sim.eval(&Injections::single(fault));
                let bad: Vec<u64> = sim.outputs().iter().map(|w| w & 1).collect();
                if good != bad {
                    first = Some(t);
                    break;
                }
            }
            assert_eq!(
                fast.first_detected[fi],
                first,
                "fault {} disagrees with the serial reference",
                fault.describe(&nl)
            );
        }
    }

    #[test]
    fn sessions_accumulate_with_fault_dropping() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        let all = exhaustive_patterns(5);
        // Split the exhaustive set into two sessions.
        let s1: Vec<Pattern> = all[..10].to_vec();
        let s2: Vec<Pattern> = all[10..].to_vec();
        let split = fault_simulate_sessions(&nl, &faults, &[s1, s2]);
        let whole = fault_simulate(&nl, &faults, &all);
        assert_eq!(split.vectors_applied, 32);
        // Combinational circuits: session boundaries are irrelevant, so
        // first-detection indices must match the single-run result.
        assert_eq!(split.first_detected, whole.first_detected);
    }

    #[test]
    fn sessions_reset_sequential_state() {
        let src = "
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";
        let nl = parse_bench(src, "t").unwrap();
        let faults = collapsed_faults(&nl);
        // Two short sessions; the second starts from reset again.
        let sessions = vec![vec![vec![true]; 2], vec![vec![false]; 2]];
        let result = fault_simulate_sessions(&nl, &faults, &sessions);
        assert_eq!(result.vectors_applied, 4);
        assert!(result.detected_count() > 0);
        // Indices from the second session land at 2 and 3.
        for d in result.first_detected.iter().flatten() {
            assert!(*d < 4);
        }
    }

    /// Asserts the reduced-simulation contract against full simulation:
    /// identical verdicts for every fault, exact indices for kept and
    /// residual faults, and upper-bound indices for credited ones.
    fn assert_reduced_matches(
        nl: &Netlist,
        faults: &[Fault],
        sessions: &[Vec<Pattern>],
        expect_reduction: bool,
    ) -> usize {
        use crate::dominance::{reduce_faults, FaultPlan};
        let full = fault_simulate_sessions(nl, faults, sessions);
        let red = reduce_faults(nl, faults);
        let reduced = fault_simulate_sessions_reduced(nl, &red, sessions);
        assert_eq!(reduced.faults, full.faults);
        assert_eq!(reduced.vectors_applied, full.vectors_applied);
        assert_eq!(
            reduced.detected_count(),
            full.detected_count(),
            "detected counts must match exactly"
        );
        assert_eq!(reduced.coverage().to_bits(), full.coverage().to_bits());
        for (i, (r, f)) in reduced
            .first_detected
            .iter()
            .zip(&full.first_detected)
            .enumerate()
        {
            match red.plan(i) {
                FaultPlan::Simulate => {
                    assert_eq!(r, f, "kept fault {} must be exact", faults[i].describe(nl));
                }
                FaultPlan::Observe { .. } => {
                    assert_eq!(
                        r,
                        f,
                        "observed fault {} must be exact",
                        faults[i].describe(nl)
                    );
                }
                FaultPlan::Credit(_) => match (r, f) {
                    (Some(rt), Some(ft)) => assert!(
                        rt >= ft,
                        "credited index is an upper bound ({} : {rt} < {ft})",
                        faults[i].describe(nl)
                    ),
                    (None, None) => {}
                    _ => panic!(
                        "verdict mismatch on {}: reduced {r:?} vs full {f:?}",
                        faults[i].describe(nl)
                    ),
                },
            }
        }
        assert!(reduced.faults_simulated <= reduced.faults.len());
        assert_eq!(full.faults_simulated, full.faults.len());
        if expect_reduction {
            assert!(
                reduced.faults_simulated < reduced.faults.len(),
                "expected a strict lane reduction: {} of {}",
                reduced.faults_simulated,
                reduced.faults.len()
            );
        }
        reduced.faults_simulated
    }

    #[test]
    fn reduced_matches_full_on_c17_exhaustive_and_sparse() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = collapsed_faults(&nl);
        let all = exhaustive_patterns(5);
        assert_reduced_matches(&nl, &faults, std::slice::from_ref(&all), true);
        // Split sessions and a sparse prefix (leaves undetected faults,
        // exercising the residual pass; credit may or may not land, so
        // no strict-reduction expectation).
        assert_reduced_matches(&nl, &faults, &[all[..3].to_vec(), all[3..7].to_vec()], true);
        assert_reduced_matches(&nl, &faults, &[vec![vec![false; 5]; 2]], false);
        // No vectors at all: nothing is credited, every dropped fault
        // is residually simulated — exactness beats lane savings.
        assert_reduced_matches(&nl, &faults, &[], false);
    }

    #[test]
    fn reduced_matches_full_on_a_sequential_machine() {
        let src = "
INPUT(a)
INPUT(b)
OUTPUT(q)
OUTPUT(y)
q = DFF(d)
d = AND(a, q2)
q2 = NAND(b, q)
y = OR(q, b)
";
        let nl = parse_bench(src, "m").unwrap();
        let faults = collapsed_faults(&nl);
        // Several deterministic sequences, including ones that leave
        // faults undetected.
        let mut rng = 0x5EED_CAFE_u64;
        let mut best = usize::MAX;
        for len in [1usize, 3, 6, 12] {
            let vectors: Vec<Pattern> = (0..len)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    vec![(rng >> 61) & 1 == 1, (rng >> 62) & 1 == 1]
                })
                .collect();
            best = best.min(assert_reduced_matches(
                &nl,
                &faults,
                std::slice::from_ref(&vectors),
                false,
            ));
            let half = vectors.len() / 2;
            best = best.min(assert_reduced_matches(
                &nl,
                &faults,
                &[vectors[..half].to_vec(), vectors[half..].to_vec()],
                false,
            ));
        }
        // The state-free output cone (y = OR(q, b)) must reduce once
        // its dominated representatives are detected.
        assert!(best < faults.len(), "no sequence achieved a lane reduction");
    }

    #[test]
    fn reduced_matches_full_on_the_uncollapsed_universe() {
        let nl = parse_bench(C17, "c17").unwrap();
        let faults = full_faults(&nl);
        assert_reduced_matches(&nl, &faults, &[exhaustive_patterns(5)], true);
    }

    #[test]
    fn more_than_63_sequential_faults_are_batched() {
        // Enough structure to exceed one parallel-fault batch.
        let mut src = String::from("INPUT(x0)\nOUTPUT(q)\n");
        let mut prev = "x0".to_string();
        for i in 0..40 {
            src.push_str(&format!("g{i} = NOT({prev})\n"));
            prev = format!("g{i}");
        }
        src.push_str(&format!("q = DFF({prev})\n"));
        let nl = parse_bench(&src, "chain").unwrap();
        let faults = full_faults(&nl);
        assert!(faults.len() > 63);
        let vectors: Vec<Pattern> = (0..6).map(|i| vec![i % 2 == 0]).collect();
        let result = fault_simulate(&nl, &faults, &vectors);
        // The inverter chain propagates everything to the flop; most
        // faults must be seen within a few cycles.
        assert!(result.detected_count() > faults.len() / 2);
    }
}
