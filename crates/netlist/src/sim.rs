//! 64-lane bit-parallel logic simulation with fault injection.
//!
//! Every net carries a 64-bit word; lane *k* (bit *k*) is an independent
//! simulation. The two classic uses:
//!
//! * **parallel-pattern** — lanes are 64 different input patterns
//!   (combinational fault simulation, random-pattern evaluation);
//! * **parallel-fault** — lanes are 64 machines receiving the *same*
//!   input, lane 0 the good machine and lanes 1..64 machines with one
//!   injected fault each (sequential fault simulation).
//!
//! Injection is expressed as per-lane force masks on nets (stem faults)
//! or on individual gate input pins (branch faults).

use crate::fault::{Fault, FaultSite};
use crate::netlist::{Netlist, Node};
use std::collections::HashMap;

/// Per-lane stuck-at force masks.
///
/// A bit set in a `sa1` mask forces the corresponding lane of that net or
/// pin to 1; `sa0` forces to 0. Empty injections simulate the good
/// circuit.
#[derive(Debug, Clone, Default)]
pub struct Injections {
    net_sa0: HashMap<u32, u64>,
    net_sa1: HashMap<u32, u64>,
    pin_sa0: HashMap<(u32, u32), u64>,
    pin_sa1: HashMap<(u32, u32), u64>,
}

impl Injections {
    /// No injections: the good circuit.
    pub fn none() -> Self {
        Self::default()
    }

    /// Returns `true` when no fault is injected.
    pub fn is_empty(&self) -> bool {
        self.net_sa0.is_empty()
            && self.net_sa1.is_empty()
            && self.pin_sa0.is_empty()
            && self.pin_sa1.is_empty()
    }

    /// Injects `fault` into the given lanes.
    pub fn add(&mut self, fault: &Fault, lanes: u64) {
        match (&fault.site, fault.stuck_at_one) {
            (FaultSite::Net(n), false) => *self.net_sa0.entry(n.0).or_insert(0) |= lanes,
            (FaultSite::Net(n), true) => *self.net_sa1.entry(n.0).or_insert(0) |= lanes,
            (FaultSite::Pin { gate, pin }, false) => {
                *self.pin_sa0.entry((gate.0, *pin)).or_insert(0) |= lanes
            }
            (FaultSite::Pin { gate, pin }, true) => {
                *self.pin_sa1.entry((gate.0, *pin)).or_insert(0) |= lanes
            }
        }
    }

    /// Convenience: a single fault forced in **all** lanes.
    pub fn single(fault: &Fault) -> Self {
        let mut inj = Self::default();
        inj.add(fault, u64::MAX);
        inj
    }

    #[inline]
    fn force_net(&self, net: u32, word: u64) -> u64 {
        let mut w = word;
        if let Some(&m) = self.net_sa1.get(&net) {
            w |= m;
        }
        if let Some(&m) = self.net_sa0.get(&net) {
            w &= !m;
        }
        w
    }

    #[inline]
    fn force_pin(&self, gate: u32, pin: u32, word: u64) -> u64 {
        let mut w = word;
        if let Some(&m) = self.pin_sa1.get(&(gate, pin)) {
            w |= m;
        }
        if let Some(&m) = self.pin_sa0.get(&(gate, pin)) {
            w &= !m;
        }
        w
    }

    /// Fast path: when there are no pin faults, gate evaluation can skip
    /// per-pin checks entirely.
    fn has_pin_faults(&self) -> bool {
        !self.pin_sa0.is_empty() || !self.pin_sa1.is_empty()
    }
}

/// A 64-lane logic simulator over a frozen [`Netlist`].
///
/// # Examples
///
/// ```
/// use musa_netlist::{parse_bench, Injections, LogicSim, C17};
///
/// let nl = parse_bench(C17, "c17")?;
/// let mut sim = LogicSim::new(&nl);
/// // Lane-parallel: apply four patterns at once (lanes 0..4).
/// sim.set_inputs(&[0b0101, 0b0011, 0b0000, 0b1111, 0b1010]);
/// sim.eval(&Injections::none());
/// let outs = sim.outputs();
/// assert_eq!(outs.len(), 2);
/// # Ok::<(), musa_netlist::BenchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LogicSim<'a> {
    nl: &'a Netlist,
    values: Vec<u64>,
    /// Pristine primary-input words, kept apart from `values` so that
    /// fault forcing during [`LogicSim::eval`] never corrupts the
    /// applied stimulus for subsequent injections.
    input_words: Vec<u64>,
    state: Vec<u64>,
}

impl<'a> LogicSim<'a> {
    /// Creates a simulator in the power-on state.
    pub fn new(nl: &'a Netlist) -> Self {
        let values = vec![0; nl.net_count()];
        let state = nl
            .dffs()
            .iter()
            .map(|&ff| match nl.node(ff) {
                Node::Dff { init, .. } => {
                    if *init {
                        u64::MAX
                    } else {
                        0
                    }
                }
                _ => unreachable!("dff list holds only flops"),
            })
            .collect();
        Self {
            nl,
            values,
            input_words: vec![0; nl.inputs().len()],
            state,
        }
    }

    /// The simulated netlist.
    pub fn netlist(&self) -> &'a Netlist {
        self.nl
    }

    /// Restores every flip-flop to its power-on value (all lanes).
    pub fn reset(&mut self) {
        for (slot, &ff) in self.state.iter_mut().zip(self.nl.dffs()) {
            if let Node::Dff { init, .. } = self.nl.node(ff) {
                *slot = if *init { u64::MAX } else { 0 };
            }
        }
    }

    /// Sets all primary-input words, in `Netlist::inputs` order.
    ///
    /// # Panics
    ///
    /// Panics if the slice length differs from the input count.
    pub fn set_inputs(&mut self, words: &[u64]) {
        assert_eq!(words.len(), self.nl.inputs().len(), "input count mismatch");
        self.input_words.copy_from_slice(words);
    }

    /// Broadcast-sets the inputs from single-bit values (every lane gets
    /// the same pattern) — the parallel-fault usage.
    pub fn set_inputs_broadcast(&mut self, bits: &[bool]) {
        assert_eq!(bits.len(), self.nl.inputs().len(), "input count mismatch");
        for (slot, &bit) in bits.iter().enumerate() {
            self.input_words[slot] = if bit { u64::MAX } else { 0 };
        }
    }

    /// Evaluates the combinational core under the given injections.
    ///
    /// Primary inputs must have been set beforehand; flop outputs take the
    /// current state.
    pub fn eval(&mut self, inj: &Injections) {
        // Sources: constants and flop outputs.
        let pin_faults = inj.has_pin_faults();
        for net in self.nl.nets() {
            match self.nl.node(net) {
                Node::Const(v) => {
                    self.values[net.0 as usize] = if *v { u64::MAX } else { 0 };
                }
                Node::Input => {}
                _ => continue,
            }
            self.values[net.0 as usize] = inj.force_net(net.0, self.values[net.0 as usize]);
        }
        for (i, &ff) in self.nl.dffs().iter().enumerate() {
            self.values[ff.0 as usize] = inj.force_net(ff.0, self.state[i]);
        }
        for (slot, &input) in self.nl.inputs().iter().enumerate() {
            self.values[input.0 as usize] =
                inj.force_net(input.0, self.input_words[slot]);
        }
        // Gates in topological order.
        let mut scratch: Vec<u64> = Vec::with_capacity(8);
        for &g in self.nl.topo_order() {
            if let Node::Gate { kind, inputs } = self.nl.node(g) {
                scratch.clear();
                if pin_faults {
                    for (pin, &src) in inputs.iter().enumerate() {
                        scratch.push(inj.force_pin(
                            g.0,
                            pin as u32,
                            self.values[src.0 as usize],
                        ));
                    }
                } else {
                    scratch.extend(inputs.iter().map(|&src| self.values[src.0 as usize]));
                }
                let word = kind.eval_words(&scratch);
                self.values[g.0 as usize] = inj.force_net(g.0, word);
            }
        }
    }

    /// The current word on a net.
    pub fn value(&self, net: crate::netlist::NetId) -> u64 {
        self.values[net.0 as usize]
    }

    /// The primary-output words, in declaration order.
    pub fn outputs(&self) -> Vec<u64> {
        self.nl
            .outputs()
            .iter()
            .map(|&o| self.values[o.0 as usize])
            .collect()
    }

    /// Clocks every flip-flop: state ← current D-input values.
    ///
    /// Call after [`LogicSim::eval`] so D inputs are settled.
    pub fn clock(&mut self, inj: &Injections) {
        for (i, &ff) in self.nl.dffs().iter().enumerate() {
            if let Node::Dff { d, .. } = self.nl.node(ff) {
                // The D pin can itself carry a branch fault (pin 0).
                let word = inj.force_pin(ff.0, 0, self.values[d.0 as usize]);
                self.state[i] = word;
            }
        }
    }

    /// Full test-application step: set broadcast inputs, settle, sample
    /// outputs, clock. Returns the output words.
    pub fn step_broadcast(&mut self, bits: &[bool], inj: &Injections) -> Vec<u64> {
        self.set_inputs_broadcast(bits);
        self.eval(inj);
        let outs = self.outputs();
        if !self.nl.is_combinational() {
            self.clock(inj);
        }
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bench::{parse_bench, C17};
    use crate::fault::{Fault, FaultSite};
    use crate::netlist::{GateKind, Netlist};

    fn c17() -> Netlist {
        parse_bench(C17, "c17").unwrap()
    }

    /// Reference model of c17 for one scalar pattern.
    fn c17_ref(g1: bool, g2: bool, g3: bool, g6: bool, g7: bool) -> (bool, bool) {
        let g10 = !(g1 && g3);
        let g11 = !(g3 && g6);
        let g16 = !(g2 && g11);
        let g19 = !(g11 && g7);
        let g22 = !(g10 && g16);
        let g23 = !(g16 && g19);
        (g22, g23)
    }

    #[test]
    fn matches_reference_on_all_32_patterns() {
        let nl = c17();
        let mut sim = LogicSim::new(&nl);
        // Pack all 32 input combinations into lanes 0..32.
        let mut words = vec![0u64; 5];
        for pattern in 0..32u64 {
            for (i, word) in words.iter_mut().enumerate() {
                if (pattern >> i) & 1 == 1 {
                    *word |= 1 << pattern;
                }
            }
        }
        sim.set_inputs(&words);
        sim.eval(&Injections::none());
        let outs = sim.outputs();
        for pattern in 0..32u64 {
            let bit = |i: usize| (pattern >> i) & 1 == 1;
            let (e22, e23) = c17_ref(bit(0), bit(1), bit(2), bit(3), bit(4));
            assert_eq!((outs[0] >> pattern) & 1 == 1, e22, "G22 pattern {pattern}");
            assert_eq!((outs[1] >> pattern) & 1 == 1, e23, "G23 pattern {pattern}");
        }
    }

    #[test]
    fn stem_fault_changes_output() {
        let nl = c17();
        let g10 = nl.net_by_name("G10").unwrap();
        let mut sim = LogicSim::new(&nl);
        // G1=1, G3=1 → G10=0 normally; force s-a-1.
        sim.set_inputs_broadcast(&[true, false, true, false, false]);
        sim.eval(&Injections::none());
        let good = sim.outputs();
        let fault = Fault {
            site: FaultSite::Net(g10),
            stuck_at_one: true,
        };
        sim.eval(&Injections::single(&fault));
        let bad = sim.outputs();
        assert_ne!(good[0], bad[0], "G22 must flip under G10 s-a-1");
    }

    #[test]
    fn pin_fault_is_local_to_gate() {
        // y1 = AND(a, b), y2 = OR(a, b): a pin fault on the AND's `a` pin
        // must not disturb the OR.
        let mut nl = Netlist::new("pins");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let y1 = nl.add_gate("y1", GateKind::And, vec![a, b]);
        let y2 = nl.add_gate("y2", GateKind::Or, vec![a, b]);
        nl.mark_output(y1);
        nl.mark_output(y2);
        let nl = nl.freeze().unwrap();

        let mut sim = LogicSim::new(&nl);
        sim.set_inputs_broadcast(&[true, true]);
        let fault = Fault {
            site: FaultSite::Pin {
                gate: nl.net_by_name("y1").unwrap(),
                pin: 0,
            },
            stuck_at_one: false,
        };
        sim.eval(&Injections::single(&fault));
        let outs = sim.outputs();
        assert_eq!(outs[0], 0, "AND sees forced 0");
        assert_eq!(outs[1], u64::MAX, "OR is unaffected");
    }

    #[test]
    fn injection_respects_lanes() {
        let nl = c17();
        let g10 = nl.net_by_name("G10").unwrap();
        let fault = Fault {
            site: FaultSite::Net(g10),
            stuck_at_one: true,
        };
        let mut inj = Injections::none();
        inj.add(&fault, 0b10); // lane 1 only
        let mut sim = LogicSim::new(&nl);
        sim.set_inputs_broadcast(&[true, false, true, false, false]);
        sim.eval(&inj);
        let g22 = sim.value(nl.net_by_name("G22").unwrap());
        // Lane 0 good, lane 1 faulty → they must differ.
        assert_ne!(g22 & 1, (g22 >> 1) & 1);
    }

    #[test]
    fn sequential_toggle_counts() {
        let src = "
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";
        let nl = parse_bench(src, "t").unwrap();
        let mut sim = LogicSim::new(&nl);
        let none = Injections::none();
        let q0 = sim.step_broadcast(&[true], &none)[0];
        let q1 = sim.step_broadcast(&[true], &none)[0];
        let q2 = sim.step_broadcast(&[false], &none)[0];
        let q3 = sim.step_broadcast(&[true], &none)[0];
        assert_eq!(q0 & 1, 0); // initial state
        assert_eq!(q1 & 1, 1); // toggled
        assert_eq!(q2 & 1, 0); // toggled again (en was 1 at step 2's edge? no: q2 observed before its edge)
        assert_eq!(q3 & 1, 0); // en=0 at step 3 edge held the value... observed pre-edge
    }

    #[test]
    fn reset_restores_init() {
        let src = "
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";
        let nl = parse_bench(src, "t").unwrap();
        let mut sim = LogicSim::new(&nl);
        let none = Injections::none();
        sim.step_broadcast(&[true], &none);
        sim.step_broadcast(&[true], &none);
        sim.reset();
        let q = sim.step_broadcast(&[false], &none)[0];
        assert_eq!(q & 1, 0);
    }

    #[test]
    fn injections_single_and_empty() {
        let nl = c17();
        let fault = Fault {
            site: FaultSite::Net(nl.net_by_name("G10").unwrap()),
            stuck_at_one: false,
        };
        assert!(Injections::none().is_empty());
        assert!(!Injections::single(&fault).is_empty());
    }
}
