//! Reader and writer for the ISCAS `.bench` netlist format.
//!
//! The de-facto benchmark interchange format:
//!
//! ```text
//! # c17 fragment
//! INPUT(G1)
//! INPUT(G3)
//! OUTPUT(G22)
//! G10 = NAND(G1, G3)
//! G22 = NAND(G10, G3)
//! ```
//!
//! Extensions accepted by this reader: `DFF(d)` flops (as in the ISCAS'89
//! sequential benchmarks), `BUFF`/`BUF`, `CONST0`/`CONST1` nullary
//! drivers, and `#` comments.

use crate::netlist::{GateKind, NetId, Netlist, NetlistError};
use std::collections::HashMap;
use std::fmt;

/// Error reading a `.bench` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchError {
    /// Syntactic problem on a specific line (1-based).
    Syntax {
        /// Line number.
        line: usize,
        /// Description.
        message: String,
    },
    /// The netlist parsed but failed validation.
    Invalid(NetlistError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Syntax { line, message } => {
                write!(f, "bench syntax error on line {line}: {message}")
            }
            BenchError::Invalid(e) => write!(f, "invalid bench netlist: {e}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for BenchError {
    fn from(e: NetlistError) -> Self {
        BenchError::Invalid(e)
    }
}

/// Parses `.bench` text into a frozen [`Netlist`].
///
/// # Errors
///
/// Returns [`BenchError::Syntax`] for malformed lines and
/// [`BenchError::Invalid`] when the described circuit is ill-formed
/// (dangling nets, loops, …).
///
/// # Examples
///
/// ```
/// let nl = musa_netlist::parse_bench(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n",
///     "tiny",
/// )?;
/// assert_eq!(nl.gate_count(), 1);
/// # Ok::<(), musa_netlist::BenchError>(())
/// ```
pub fn parse_bench(text: &str, name: &str) -> Result<Netlist, BenchError> {
    struct PendingGate {
        out: String,
        func: String,
        args: Vec<String>,
        line: usize,
    }

    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut gates: Vec<PendingGate> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let code = raw.split('#').next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        let syntax = |message: &str| BenchError::Syntax {
            line,
            message: message.to_string(),
        };
        if let Some(rest) = code.strip_prefix("INPUT") {
            inputs.push(parse_paren_arg(rest).ok_or_else(|| syntax("expected INPUT(name)"))?);
        } else if let Some(rest) = code.strip_prefix("OUTPUT") {
            outputs.push(parse_paren_arg(rest).ok_or_else(|| syntax("expected OUTPUT(name)"))?);
        } else if let Some(eq) = code.find('=') {
            let out = code[..eq].trim().to_string();
            let rhs = code[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(|| syntax("expected FUNC(args)"))?;
            let close = rhs.rfind(')').ok_or_else(|| syntax("missing `)`"))?;
            let func = rhs[..open].trim().to_ascii_uppercase();
            let args: Vec<String> = rhs[open + 1..close]
                .split(',')
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
                .collect();
            if out.is_empty() {
                return Err(syntax("missing output name"));
            }
            gates.push(PendingGate {
                out,
                func,
                args,
                line,
            });
        } else {
            return Err(syntax("unrecognised line"));
        }
    }

    let mut nl = Netlist::new(name);
    let mut ids: HashMap<String, NetId> = HashMap::new();
    for input in &inputs {
        ids.insert(input.clone(), nl.add_input(input.clone()));
    }
    // First pass: declare all gate/flop outputs so forward references work.
    for gate in &gates {
        let id = match gate.func.as_str() {
            "DFF" | "DFF0" => nl.add_dff(gate.out.clone(), false),
            "DFF1" => nl.add_dff(gate.out.clone(), true),
            "CONST0" => nl.add_const(gate.out.clone(), false),
            "CONST1" => nl.add_const(gate.out.clone(), true),
            _ => {
                // Placeholder; inputs filled in the second pass.
                nl.add_gate(gate.out.clone(), GateKind::Buf, Vec::new())
            }
        };
        ids.insert(gate.out.clone(), id);
    }
    // Second pass: resolve arguments.
    let mut resolved: Vec<(NetId, GateKind, Vec<NetId>)> = Vec::new();
    for gate in &gates {
        let out_id = ids[&gate.out];
        let args: Vec<NetId> = gate
            .args
            .iter()
            .map(|a| {
                ids.get(a).copied().ok_or(BenchError::Syntax {
                    line: gate.line,
                    message: format!("unknown net `{a}`"),
                })
            })
            .collect::<Result<_, _>>()?;
        let kind = match gate.func.as_str() {
            "AND" => GateKind::And,
            "OR" => GateKind::Or,
            "NAND" => GateKind::Nand,
            "NOR" => GateKind::Nor,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "NOT" | "INV" => GateKind::Not,
            "BUF" | "BUFF" => GateKind::Buf,
            "DFF" | "DFF0" | "DFF1" => {
                if args.len() != 1 {
                    return Err(BenchError::Syntax {
                        line: gate.line,
                        message: "DFF takes exactly one argument".to_string(),
                    });
                }
                nl.connect_dff(out_id, args[0]);
                continue;
            }
            "CONST0" | "CONST1" => continue,
            other => {
                return Err(BenchError::Syntax {
                    line: gate.line,
                    message: format!("unknown function `{other}`"),
                });
            }
        };
        resolved.push((out_id, kind, args));
    }
    // Rewrite placeholder gates with their real kind and inputs. The
    // rebuild inserts nets in the same order, so ids are preserved and
    // forward references remain valid as-is.
    let mut rebuilt = Netlist::new(name);
    for net in nl.nets() {
        let name = nl.net_name(net).to_string();
        let new = match nl.node(net) {
            crate::netlist::Node::Input => rebuilt.add_input(name),
            crate::netlist::Node::Const(v) => rebuilt.add_const(name, *v),
            crate::netlist::Node::Dff { init, .. } => rebuilt.add_dff(name, *init),
            crate::netlist::Node::Gate { .. } => {
                let (_, kind, args) = resolved
                    .iter()
                    .find(|(o, _, _)| *o == net)
                    .expect("placeholder gate must be resolved");
                rebuilt.add_gate(name, *kind, args.clone())
            }
        };
        debug_assert_eq!(new, net, "rebuild must preserve net ids");
    }
    for net in nl.nets() {
        if let crate::netlist::Node::Dff { d, .. } = nl.node(net) {
            rebuilt.connect_dff(net, *d);
        }
    }
    for output in &outputs {
        let id = ids.get(output).ok_or(BenchError::Syntax {
            line: 0,
            message: format!("OUTPUT names unknown net `{output}`"),
        })?;
        rebuilt.mark_output(*id);
    }
    Ok(rebuilt.freeze()?)
}

fn parse_paren_arg(rest: &str) -> Option<String> {
    let rest = rest.trim();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    let name = inner.trim();
    if name.is_empty() {
        None
    } else {
        Some(name.to_string())
    }
}

/// Renders a netlist in `.bench` format.
///
/// The output parses back ([`parse_bench`]) to an equivalent circuit.
pub fn write_bench(nl: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {}", nl.name());
    let _ = writeln!(
        out,
        "# {} inputs, {} outputs, {} gates, {} flops",
        nl.inputs().len(),
        nl.outputs().len(),
        nl.gate_count(),
        nl.dff_count()
    );
    for &input in nl.inputs() {
        let _ = writeln!(out, "INPUT({})", nl.net_name(input));
    }
    for &output in nl.outputs() {
        let _ = writeln!(out, "OUTPUT({})", nl.net_name(output));
    }
    for net in nl.nets() {
        match nl.node(net) {
            crate::netlist::Node::Input => {}
            crate::netlist::Node::Const(v) => {
                let _ = writeln!(
                    out,
                    "{} = CONST{}()",
                    nl.net_name(net),
                    if *v { 1 } else { 0 }
                );
            }
            crate::netlist::Node::Dff { d, init } => {
                // Extension: DFF1 carries a power-on value of 1 (plain
                // DFF stays compatible with historical readers).
                let func = if *init { "DFF1" } else { "DFF" };
                let _ = writeln!(out, "{} = {}({})", nl.net_name(net), func, nl.net_name(*d));
            }
            crate::netlist::Node::Gate { kind, inputs } => {
                let args: Vec<&str> = inputs.iter().map(|&i| nl.net_name(i)).collect();
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    nl.net_name(net),
                    kind.bench_name(),
                    args.join(", ")
                );
            }
        }
    }
    out
}

/// The classic ISCAS'85 c17 netlist (6 NAND gates) in `.bench` format.
///
/// The smallest historical benchmark; used pervasively in tests and
/// examples across the workspace.
pub const C17: &str = "
# c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_c17() {
        let nl = parse_bench(C17, "c17").unwrap();
        assert_eq!(nl.inputs().len(), 5);
        assert_eq!(nl.outputs().len(), 2);
        assert_eq!(nl.gate_count(), 6);
        assert!(nl.is_combinational());
        assert_eq!(nl.depth(), 3);
    }

    #[test]
    fn roundtrips_c17() {
        let nl = parse_bench(C17, "c17").unwrap();
        let text = write_bench(&nl);
        let nl2 = parse_bench(&text, "c17").unwrap();
        assert_eq!(nl.gate_count(), nl2.gate_count());
        assert_eq!(nl.inputs().len(), nl2.inputs().len());
        assert_eq!(nl.outputs().len(), nl2.outputs().len());
        // Same evaluation order structure.
        assert_eq!(nl.depth(), nl2.depth());
    }

    #[test]
    fn parses_sequential_with_forward_reference() {
        let src = "
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
";
        let nl = parse_bench(src, "toggle").unwrap();
        assert_eq!(nl.dff_count(), 1);
        assert!(!nl.is_combinational());
        let text = write_bench(&nl);
        let nl2 = parse_bench(&text, "toggle").unwrap();
        assert_eq!(nl2.dff_count(), 1);
    }

    #[test]
    fn dff_init_survives_roundtrip() {
        let mut nl = crate::netlist::Netlist::new("init");
        let en = nl.add_input("en");
        let q1 = nl.add_dff("q1", true);
        let q0 = nl.add_dff("q0", false);
        let d = nl.add_gate("d", crate::netlist::GateKind::Xor, vec![q1, en]);
        nl.connect_dff(q1, d);
        nl.connect_dff(q0, d);
        nl.mark_output(q1);
        nl.mark_output(q0);
        let nl = nl.freeze().unwrap();
        let text = write_bench(&nl);
        assert!(text.contains("DFF1("), "{text}");
        let reparsed = parse_bench(&text, "init").unwrap();
        let q1r = reparsed.net_by_name("q1").unwrap();
        let q0r = reparsed.net_by_name("q0").unwrap();
        assert!(matches!(
            reparsed.node(q1r),
            crate::netlist::Node::Dff { init: true, .. }
        ));
        assert!(matches!(
            reparsed.node(q0r),
            crate::netlist::Node::Dff { init: false, .. }
        ));
    }

    #[test]
    fn parses_constants_and_buffers() {
        let src = "
INPUT(a)
OUTPUT(y)
one = CONST1()
b = BUFF(a)
y = AND(b, one)
";
        let nl = parse_bench(src, "k").unwrap();
        assert_eq!(nl.gate_count(), 2);
        assert_eq!(nl.net_count(), 4);
    }

    #[test]
    fn rejects_unknown_function() {
        let err = parse_bench("INPUT(a)\ny = FROB(a)\nOUTPUT(y)\n", "x").unwrap_err();
        assert!(matches!(err, BenchError::Syntax { .. }));
        assert!(err.to_string().contains("FROB"));
    }

    #[test]
    fn rejects_unknown_net() {
        let err = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, zz)\n", "x").unwrap_err();
        assert!(err.to_string().contains("zz"));
    }

    #[test]
    fn rejects_unknown_output() {
        let err = parse_bench("INPUT(a)\nOUTPUT(nope)\ny = NOT(a)\n", "x").unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_bench("INPUT a\n", "x").is_err());
        assert!(parse_bench("wibble\n", "x").is_err());
        assert!(parse_bench("y = AND(a", "x").is_err());
        assert!(parse_bench("INPUT(a)\nq = DFF(a, a)\nOUTPUT(q)\n", "x").is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let nl = parse_bench(
            "# header\n\nINPUT(a)  # trailing\nOUTPUT(y)\ny = NOT(a)\n",
            "c",
        )
        .unwrap();
        assert_eq!(nl.gate_count(), 1);
    }
}
