//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The container this workspace builds in has no access to a crates
//! registry, so the real `criterion` cannot be vendored. This shim
//! implements exactly the API surface the `musa_bench` benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`] and the [`criterion_group!`]/[`criterion_main!`]
//! macros — with a simple wall-clock measurement loop instead of
//! criterion's statistical machinery.
//!
//! Behavior:
//!
//! * `cargo bench` runs each benchmark `sample_size` times (after one
//!   warm-up run) and reports the minimum, mean and maximum time per
//!   iteration;
//! * `cargo test`/`--test` mode runs every benchmark exactly once so
//!   benches stay compile- and run-checked in CI without burning time;
//! * a positional CLI filter restricts which benchmark IDs run, like
//!   criterion's own substring filter.
//!
//! To switch back to real criterion, point the `criterion` entry of
//! `[workspace.dependencies]` in the workspace root at crates.io.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo and the real criterion CLI pass through;
                // irrelevant to the shim's fixed measurement loop.
                "--bench" | "--verbose" | "--quiet" | "-q" | "--noplot" => {}
                other if other.starts_with('-') => {}
                other => filter = Some(other.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured runs per benchmark (criterion-compatible knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Benchmark a closure over a borrowed input under `group/id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Close the group. Present for API compatibility; the shim reports
    /// each benchmark as it completes, so there is nothing to flush.
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.criterion.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher {
            samples,
            per_iter: Vec::with_capacity(samples),
        };
        f(&mut bencher);
        report(&full, &bencher.per_iter);
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    per_iter: Vec<Duration>,
}

impl Bencher {
    /// Run `f` once as warm-up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.per_iter.push(start.elapsed());
        }
    }
}

/// Identifies one benchmark within a group, mirroring criterion's type.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("128_vectors", "c432")` → `128_vectors/c432`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// `BenchmarkId::from_parameter("c432")` → `c432`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

fn report(id: &str, per_iter: &[Duration]) {
    if per_iter.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let min = per_iter.iter().min().copied().unwrap_or_default();
    let max = per_iter.iter().max().copied().unwrap_or_default();
    let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
    println!(
        "{id:<48} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        per_iter.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declare a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group declared by `criterion_group!`.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
