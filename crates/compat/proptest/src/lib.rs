//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The container this workspace builds in has no access to a crates
//! registry, so the real `proptest` cannot be vendored. This shim
//! implements the API surface the workspace's property tests use:
//!
//! * the [`proptest!`] macro wrapping `fn name(pat in strategy, ...)`
//!   test bodies;
//! * [`Strategy`] implementations for integer ranges (`a..b`, `a..=b`,
//!   `a..`), tuples, `any::<T>()` and string regex literals (only the
//!   `.{m,n}` form the tests use is honored; other patterns fall back
//!   to short random strings);
//! * [`collection::vec`] for vectors with a sampled length;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`, mapped to
//!   the std assertions.
//!
//! Differences from real proptest: cases are generated from a fixed
//! per-test seed (deterministic across runs and platforms), there is no
//! shrinking, and failures report the panicking case index via the
//! standard assertion message. `PROPTEST_CASES` overrides the number of
//! cases per test (default 256).
//!
//! To switch back to real proptest, point the `proptest` entry of
//! `[workspace.dependencies]` in the workspace root at crates.io.

use std::ops::{Range, RangeFrom, RangeInclusive};

/// Everything the `proptest!` tests need in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Number of cases each property runs (env `PROPTEST_CASES`, default 256).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Deterministic splitmix64 generator driving all strategies.
///
/// Self-contained rather than reusing `musa_prng` so the shim has no
/// dependencies and can never entangle test randomness with the code
/// under test.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from the test function's name.
    pub fn for_test(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test
        // generation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A source of random values for one test parameter.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_ranges {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                assert!(span > 0, "empty range strategy");
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range, e.g. `0u64..=u64::MAX`.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                (self.start..=<$t>::MAX).generate(rng)
            }
        }
    )+};
}

int_ranges!(u8, u16, u32, u64, usize);

/// Strategy for "any value of `T`" — see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full value range of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// String literals act as regex strategies in proptest. The shim honors
/// the `.{m,n}` shape (random printable-heavy strings of length m..=n,
/// never containing `\n`, just like regex `.`); anything else falls
/// back to length 0..=64.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repetition(self).unwrap_or((0, 64));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| random_char(rng)).collect()
    }
}

fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (min, max) = body.split_once(',')?;
    Some((min.trim().parse().ok()?, max.trim().parse().ok()?))
}

fn random_char(rng: &mut TestRng) -> char {
    match rng.below(8) {
        // Weight towards printable ASCII: that's where lexers live.
        0..=5 => char::from(32 + rng.below(95) as u8),
        6 => {
            let c = char::from(rng.below(32) as u8);
            if c == '\n' {
                '\t'
            } else {
                c
            }
        }
        _ => char::from_u32(rng.next_u64() as u32 % 0x11_0000)
            .filter(|c| *c != '\n')
            .unwrap_or('\u{FFFD}'),
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing a `Vec` with sampled length — see [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Wrap property functions: `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases()` deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident ( $( $pat:pat_param in $strategy:expr ),+ $(,)? ) $body:block
    )+) => {$(
        $(#[$attr])*
        fn $name() {
            let mut rng = $crate::TestRng::for_test(stringify!($name));
            for case in 0..$crate::cases() {
                let _ = case;
                $( let $pat = $crate::Strategy::generate(&$strategy, &mut rng); )+
                $body
            }
        }
    )+};
}

/// `prop_assert!` — panics (std `assert!`) instead of returning `Err`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `prop_assert_eq!` — panics (std `assert_eq!`) instead of returning `Err`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `prop_assert_ne!` — panics (std `assert_ne!`) instead of returning `Err`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
