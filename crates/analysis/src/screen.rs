//! Static equivalent-mutant pre-screening.
//!
//! [`screen_population`] classifies each mutant *before* any
//! simulation: [`ScreenClass::ProvenEquivalentStatic`] when the
//! analysis can prove the rewrite cannot change observable behaviour,
//! [`ScreenClass::Viable`] otherwise. Proven mutants skip execution
//! entirely and fold into the `E` term of `MS = K/(M−E)` — which is
//! sound precisely because a proven-equivalent mutant can never be
//! killed, so skipping its simulation is bit-identical to running it.
//!
//! Two proof techniques, both conservative:
//!
//! * **Dead sites** — the mutation site lies in a statically dead
//!   region ([`crate::dataflow::analyze_dead`]). The guarding constant
//!   condition is outside the region, so no rewrite inside it can wake
//!   it. (Case-arm ids of live `case` statements are deliberately not
//!   dead: a choice rewrite can re-arm the arm.)
//! * **Local folding** — the rewritten site expression is proven equal
//!   to the original on *every* valuation of its free leaves (bounded
//!   exhaustive, ≤ [`MAX_FREE_BITS`] free bits). Free leaves range over
//!   their full declared width — a superset of reachable values, so
//!   equality on it implies equality in context.
//!
//! Everything unprovable stays `Viable` and is simulated normally;
//! the screen can produce false negatives, never false positives.

use crate::dataflow::{analyze_dead, mask, ConstEnv, FoldValue};
use crate::dataflow::{const_by_id, fold_expr};
use musa_hdl::ast::{walk_exprs, walk_stmts, CaseArm, Entity, Expr, NodeId, Stmt, UnaryOp};
use musa_hdl::{CheckedDesign, EntityInfo, SymbolKind};
use musa_mutation::{Mutant, Rewrite};
use std::collections::{HashMap, HashSet};

/// Upper bound on the total free bits enumerated by the local-folding
/// prover (2^12 = 4096 valuations per mutant, worst case).
pub const MAX_FREE_BITS: u32 = 12;

/// Verdict of the static pre-screen for one mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenClass {
    /// Statically proven equivalent: skip simulation, count into `E`.
    ProvenEquivalentStatic,
    /// Not provable statically: simulate as usual.
    Viable,
}

impl ScreenClass {
    /// `true` for [`ScreenClass::ProvenEquivalentStatic`].
    pub fn is_proven(self) -> bool {
        matches!(self, ScreenClass::ProvenEquivalentStatic)
    }
}

/// Classifies every mutant of a population against one entity.
///
/// Mutants whose site cannot be located (or that address a different
/// entity) are conservatively `Viable`.
pub fn screen_population(
    checked: &CheckedDesign,
    entity: &str,
    mutants: &[Mutant],
) -> Vec<ScreenClass> {
    let _trace = musa_trace::span("screen");
    let Some((ent, info)) = checked.entity(entity) else {
        return vec![ScreenClass::Viable; mutants.len()];
    };
    let screener = Screener::new(ent, info);
    mutants.iter().map(|m| screener.screen(m)).collect()
}

/// Per-entity screening state, built once per population.
struct Screener<'a> {
    entity: &'a Entity,
    info: &'a EntityInfo,
    env: ConstEnv,
    /// Node ids inside statically dead regions, across all processes.
    dead: HashSet<NodeId>,
    /// Expression node id → the expression.
    exprs: HashMap<NodeId, &'a Expr>,
    /// Assignment statement id → the statement.
    assigns: HashMap<NodeId, &'a Stmt>,
    /// Case-arm id → (case statement, arm index).
    arms: HashMap<NodeId, (&'a Stmt, usize)>,
    /// Symbol → number of `Ref` reads anywhere in the entity.
    reads: HashMap<musa_hdl::SymbolId, usize>,
}

impl<'a> Screener<'a> {
    fn new(entity: &'a Entity, info: &'a EntityInfo) -> Self {
        let env = ConstEnv::from_entity(entity);
        let widths = Some(&info.widths);
        let mut dead = HashSet::new();
        let mut exprs = HashMap::new();
        let mut assigns = HashMap::new();
        let mut arms: HashMap<NodeId, (&Stmt, usize)> = HashMap::new();
        let mut reads = HashMap::new();
        for process in &entity.processes {
            dead.extend(analyze_dead(&process.body, &env, widths).nodes);
            walk_stmts(&process.body, &mut |stmt| match stmt {
                Stmt::Assign { .. } => {
                    assigns.insert(stmt.id(), stmt);
                }
                Stmt::Case { arms: list, .. } => {
                    for (i, arm) in list.iter().enumerate() {
                        arms.insert(arm.id, (stmt, i));
                    }
                }
                _ => {}
            });
            walk_exprs(&process.body, &mut |e| {
                exprs.insert(e.id(), e);
                if let Expr::Ref { id, .. } = e {
                    if let Some(&sym) = info.resolved.get(id) {
                        *reads.entry(sym).or_insert(0) += 1;
                    }
                }
            });
        }
        Self {
            entity,
            info,
            env,
            dead,
            exprs,
            assigns,
            arms,
            reads,
        }
    }

    fn screen(&self, mutant: &Mutant) -> ScreenClass {
        let proven = match &mutant.rewrite {
            // Constant-declaration rewrites invalidate the constant
            // environment the dead sets were computed under, so they get
            // their own rule and never consult `dead`.
            Rewrite::ConstDecl { value } => self.const_decl_equivalent(mutant.site, *value),
            _ if self.dead.contains(&mutant.site) => true,
            Rewrite::DeleteStmt => self.delete_stmt_equivalent(mutant.site),
            Rewrite::CaseChoice { index, value } => {
                self.case_choice_equivalent(mutant.site, *index, *value)
            }
            Rewrite::StuckCondition { value } => self.stuck_condition_equivalent(mutant.site, *value),
            Rewrite::BinOp { .. }
            | Rewrite::Ref { .. }
            | Rewrite::RefToConst { .. }
            | Rewrite::Literal { .. }
            | Rewrite::InsertNot
            | Rewrite::DeleteNot => self.expr_rewrite_equivalent(mutant.site, &mutant.rewrite),
        };
        if proven {
            ScreenClass::ProvenEquivalentStatic
        } else {
            ScreenClass::Viable
        }
    }

    /// A constant rewrite is equivalent when the new value masks to the
    /// old one, or when the constant is never read.
    fn const_decl_equivalent(&self, site: NodeId, value: u64) -> bool {
        let Some(cst) = const_by_id(self.entity, site) else {
            return false;
        };
        let m = mask(cst.width);
        if value & m == cst.value & m {
            return true;
        }
        self.info
            .symbol_by_name(&cst.name.name)
            .is_some_and(|sym| self.read_count(sym) == 0)
    }

    /// Deleting an assignment is equivalent when the target is never
    /// read and is not an output port (outputs are observable even
    /// unread).
    fn delete_stmt_equivalent(&self, site: NodeId) -> bool {
        let Some(Stmt::Assign { target, .. }) = self.assigns.get(&site) else {
            return false;
        };
        let Some(&sym) = self.info.resolved.get(&target.id) else {
            return false;
        };
        if matches!(self.info.symbol(sym).kind, SymbolKind::PortOut) {
            return false;
        }
        self.read_count(sym) == 0
    }

    /// A case-choice rewrite is equivalent when neither the removed nor
    /// the added choice can change which arm matches: a choice only
    /// matters when the subject can take its value, no earlier arm
    /// already claims it, and it is not duplicated within the arm.
    fn case_choice_equivalent(&self, site: NodeId, index: usize, value: u64) -> bool {
        let Some(&(case_stmt, arm_idx)) = self.arms.get(&site) else {
            return false;
        };
        let Stmt::Case { subject, arms, .. } = case_stmt else {
            return false;
        };
        let arm: &CaseArm = &arms[arm_idx];
        if index >= arm.choices.len() {
            return false;
        }
        let old = arm.choices[index];
        if old == value {
            return true;
        }
        let possible = self.subject_values(subject);
        let subject_width = self.info.widths.get(&subject.id()).copied();
        let in_possible = |v: u64| match (&possible, subject_width) {
            (Some(set), _) => set.contains(&v),
            (None, Some(w)) => v <= mask(w),
            (None, None) => true,
        };
        let claimed_earlier = |v: u64| {
            arms[..arm_idx]
                .iter()
                .any(|a| a.choices.contains(&v))
        };
        let elsewhere_in_arm =
            |v: u64| arm.choices.iter().enumerate().any(|(j, &c)| j != index && c == v);
        let matters =
            |v: u64| in_possible(v) && !claimed_earlier(v) && !elsewhere_in_arm(v);
        !matters(old) && !matters(value)
    }

    /// The set of values the case subject can take, by bounded
    /// exhaustive folding; `None` when the enumeration is infeasible
    /// (then every in-width value is assumed possible).
    fn subject_values(&self, subject: &Expr) -> Option<HashSet<u64>> {
        let free = self.free_vars(&[subject])?;
        let mut values = HashSet::new();
        let complete = free.for_each(&self.env, |env| {
            match fold_expr(subject, env, Some(&self.info.widths)) {
                Some(v) => {
                    values.insert(v.value);
                    true
                }
                None => false,
            }
        });
        complete.then_some(values)
    }

    /// A stuck condition is equivalent when the condition already folds
    /// to the forced value on every valuation.
    fn stuck_condition_equivalent(&self, site: NodeId, value: bool) -> bool {
        let Some(cond) = self.exprs.get(&site) else {
            return false;
        };
        let Some(free) = self.free_vars(&[cond]) else {
            return false;
        };
        free.for_each(&self.env, |env| {
            fold_expr(cond, env, Some(&self.info.widths))
                .is_some_and(|v| v.as_bool() == value)
        })
    }

    /// An expression rewrite is equivalent when original and rewritten
    /// subtrees fold to the same value on every valuation of their free
    /// leaves.
    fn expr_rewrite_equivalent(&self, site: NodeId, rewrite: &Rewrite) -> bool {
        let Some(orig) = self.exprs.get(&site) else {
            return false;
        };
        let Some(mutated) = rewrite_site_expr(orig, rewrite) else {
            return false;
        };
        let Some(free) = self.free_vars(&[orig, &mutated]) else {
            return false;
        };
        let widths = Some(&self.info.widths);
        free.for_each(&self.env, |env| {
            match (fold_expr(orig, env, widths), fold_expr(&mutated, env, widths)) {
                (Some(a), Some(b)) => {
                    let w = match (a.width, b.width) {
                        (Some(x), Some(y)) if x != y => return false,
                        (Some(x), _) | (_, Some(x)) => Some(x),
                        (None, None) => None,
                    };
                    match w {
                        Some(w) => a.value & mask(w) == b.value & mask(w),
                        None => a.value == b.value,
                    }
                }
                _ => false,
            }
        })
    }

    fn read_count(&self, sym: musa_hdl::SymbolId) -> usize {
        self.reads.get(&sym).copied().unwrap_or(0)
    }

    /// Collects the free leaves of a set of expression trees: every
    /// distinct referenced name becomes an independent free variable of
    /// its declared width (constants are fixed to their value). Returns
    /// `None` when a name cannot be resolved or the total free width
    /// exceeds [`MAX_FREE_BITS`].
    fn free_vars(&self, trees: &[&Expr]) -> Option<FreeVars> {
        let mut free = FreeVars::default();
        let mut seen: HashSet<String> = HashSet::new();
        for tree in trees {
            let mut names = Vec::new();
            tree.walk(&mut |e| {
                if let Expr::Ref { name, .. } = e {
                    names.push(name.name.clone());
                }
            });
            for name in names {
                if !seen.insert(name.clone()) {
                    continue;
                }
                match self.resolve_leaf(&name)? {
                    Leaf::Fixed(v) => free.fixed.push((name, v)),
                    Leaf::Free(width) => {
                        free.total_bits += width;
                        free.vars.push((name, width));
                    }
                }
            }
        }
        (free.total_bits <= MAX_FREE_BITS).then_some(free)
    }

    /// Resolves one referenced name to a fixed constant or a free
    /// variable of known width.
    fn resolve_leaf(&self, name: &str) -> Option<Leaf> {
        if let Some(sym) = self.info.symbol_by_name(name) {
            let s = self.info.symbol(sym);
            return Some(match s.kind {
                SymbolKind::Const(v) => Leaf::Fixed(FoldValue::new(v, Some(s.width))),
                _ => Leaf::Free(s.width),
            });
        }
        // Process variables: free over their declared width (a superset
        // of reachable values, hence sound). Ambiguous widths bail.
        let mut var_width: Option<u32> = None;
        for process in &self.entity.processes {
            for var in &process.vars {
                if var.name.name == name {
                    match var_width {
                        Some(w) if w != var.width => return None,
                        _ => var_width = Some(var.width),
                    }
                }
            }
        }
        if let Some(w) = var_width {
            return Some(Leaf::Free(w));
        }
        // Loop indices: free over the smallest width covering the upper
        // bound (again a superset of `lo..=hi`).
        let mut loop_width: Option<u32> = None;
        for process in &self.entity.processes {
            walk_stmts(&process.body, &mut |s| {
                if let Stmt::For { var, hi, .. } = s {
                    if var.name == name {
                        let w = (64 - hi.leading_zeros()).max(1);
                        match loop_width {
                            Some(prev) => loop_width = Some(prev.max(w)),
                            None => loop_width = Some(w),
                        }
                    }
                }
            });
        }
        loop_width.map(Leaf::Free)
    }
}

enum Leaf {
    Fixed(FoldValue),
    Free(u32),
}

/// The free leaves of one or more expression trees.
#[derive(Default)]
struct FreeVars {
    vars: Vec<(String, u32)>,
    fixed: Vec<(String, FoldValue)>,
    total_bits: u32,
}

impl FreeVars {
    /// Runs `check` for every valuation of the free variables; returns
    /// `true` only when it holds for all of them.
    fn for_each(&self, base: &ConstEnv, mut check: impl FnMut(&ConstEnv) -> bool) -> bool {
        let mut env = base.clone();
        for (name, v) in &self.fixed {
            env.bind(name, *v);
        }
        let total = 1u64 << self.total_bits;
        for assignment in 0..total {
            let mut cursor = assignment;
            for (name, width) in &self.vars {
                env.bind(name, FoldValue::new(cursor & mask(*width), Some(*width)));
                cursor >>= width;
            }
            if !check(&env) {
                return false;
            }
        }
        true
    }
}

/// Applies an expression-level rewrite to a clone of the site
/// expression, mirroring the mutation engine's application semantics.
/// Returns `None` when the rewrite does not fit the node.
fn rewrite_site_expr(orig: &Expr, rewrite: &Rewrite) -> Option<Expr> {
    let mut expr = orig.clone();
    match rewrite {
        Rewrite::BinOp { new } => {
            let Expr::Binary { op, .. } = &mut expr else {
                return None;
            };
            *op = *new;
        }
        Rewrite::Ref { new } => {
            let Expr::Ref { name, .. } = &mut expr else {
                return None;
            };
            name.name.clone_from(new);
            name.span = musa_hdl::Span::dummy();
        }
        Rewrite::RefToConst { value, width } => {
            if !matches!(expr, Expr::Ref { .. }) {
                return None;
            }
            expr = Expr::Literal {
                id: orig.id(),
                value: *value,
                width: Some(*width),
                span: musa_hdl::Span::dummy(),
            };
        }
        Rewrite::Literal { value } => {
            let Expr::Literal { value: slot, .. } = &mut expr else {
                return None;
            };
            *slot = *value;
        }
        Rewrite::InsertNot => {
            // The folder never consults a `Unary` node's own id, so a
            // sentinel id is safe here.
            expr = Expr::Unary {
                id: NodeId(u32::MAX),
                op: UnaryOp::Not,
                arg: Box::new(expr),
            };
        }
        Rewrite::DeleteNot => {
            let Expr::Unary {
                op: UnaryOp::Not,
                arg,
                ..
            } = expr
            else {
                return None;
            };
            expr = *arg;
        }
        Rewrite::ConstDecl { .. }
        | Rewrite::CaseChoice { .. }
        | Rewrite::DeleteStmt
        | Rewrite::StuckCondition { .. } => return None,
    }
    Some(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::ast::BinOp;
    use musa_hdl::parse;
    use musa_mutation::{MutantId, MutationOperator};

    fn checked(src: &str) -> CheckedDesign {
        CheckedDesign::new(parse(src).unwrap()).unwrap()
    }

    fn mutant(site: NodeId, rewrite: Rewrite) -> Mutant {
        Mutant {
            id: MutantId(0),
            operator: MutationOperator::Ror,
            site,
            rewrite,
            description: String::new(),
        }
    }

    fn find_binary(design: &CheckedDesign, op: BinOp) -> NodeId {
        let mut found = None;
        for entity in &design.design().entities {
            for process in &entity.processes {
                walk_exprs(&process.body, &mut |e| {
                    if let Expr::Binary { id, op: o, .. } = e {
                        if *o == op && found.is_none() {
                            found = Some(*id);
                        }
                    }
                });
            }
        }
        found.expect("site")
    }

    const B01_LIKE: &str = "
        entity e is
          port(clk : in bit; rst : in bit; d : in bit; q : out bit);
        signal r : bit := 0;
        seq(clk) begin
          if rst = 1 then
            r <= 0;
          else
            r <= d;
          end if;
        end;
        comb begin q <= r; end;
        end;
    ";

    #[test]
    fn width1_relational_swap_is_proven_equivalent() {
        // On a 1-bit operand, `rst = 1` ≡ `rst >= 1`.
        let design = checked(B01_LIKE);
        let site = find_binary(&design, BinOp::Eq);
        let classes = screen_population(
            &design,
            "e",
            &[
                mutant(site, Rewrite::BinOp { new: BinOp::Ge }),
                mutant(site, Rewrite::BinOp { new: BinOp::Ne }),
            ],
        );
        assert!(classes[0].is_proven(), "rst >= 1 is rst = 1 on one bit");
        assert!(!classes[1].is_proven(), "rst /= 1 differs");
    }

    #[test]
    fn dead_site_is_proven_equivalent() {
        let src = "
            entity e is
              port(a : in bit; y : out bit);
            constant K : bit := 0;
            comb begin
              if K = 1 then
                y <= not a;
              else
                y <= a;
              end if;
            end;
            end;
        ";
        let design = checked(src);
        // Site: the `not a` value expression inside the dead arm.
        let mut site = None;
        for entity in &design.design().entities {
            for process in &entity.processes {
                walk_exprs(&process.body, &mut |e| {
                    if matches!(e, Expr::Unary { .. }) {
                        site = Some(e.id());
                    }
                });
            }
        }
        let classes = screen_population(&design, "e", &[mutant(site.unwrap(), Rewrite::DeleteNot)]);
        assert!(classes[0].is_proven());
        // The live arm's site is not provable.
        let live = find_binary(&design, BinOp::Eq);
        let classes =
            screen_population(&design, "e", &[mutant(live, Rewrite::BinOp { new: BinOp::Ne })]);
        assert!(!classes[0].is_proven());
    }

    #[test]
    fn unread_const_rewrite_is_equivalent_and_read_const_is_not() {
        let src = "
            entity e is
              port(a : in bits(4); y : out bits(4));
            constant DEADK : bits(4) := 7;
            constant LIVEK : bits(4) := 1;
            comb begin y <= a + LIVEK; end;
            end;
        ";
        let design = checked(src);
        let dead_id = design.design().entities[0].consts[0].id;
        let live_id = design.design().entities[0].consts[1].id;
        let classes = screen_population(
            &design,
            "e",
            &[
                mutant(dead_id, Rewrite::ConstDecl { value: 3 }),
                mutant(live_id, Rewrite::ConstDecl { value: 3 }),
                // Masked identity: 17 & 0xf == 1.
                mutant(live_id, Rewrite::ConstDecl { value: 17 }),
            ],
        );
        assert!(classes[0].is_proven());
        assert!(!classes[1].is_proven());
        assert!(classes[2].is_proven());
    }

    #[test]
    fn delete_of_unread_signal_assignment_is_equivalent() {
        let src = "
            entity e is
              port(clk : in bit; d : in bit; q : out bit);
            signal ghost : bit := 0;
            seq(clk) begin
              ghost <= d;
              q <= d;
            end;
            end;
        ";
        let design = checked(src);
        let body = &design.design().entities[0].processes[0].body;
        let ghost_assign = body[0].id();
        let q_assign = body[1].id();
        let classes = screen_population(
            &design,
            "e",
            &[
                mutant(ghost_assign, Rewrite::DeleteStmt),
                mutant(q_assign, Rewrite::DeleteStmt),
            ],
        );
        assert!(classes[0].is_proven(), "ghost is never read");
        assert!(!classes[1].is_proven(), "q is an output");
    }

    #[test]
    fn case_choice_outside_subject_range_is_equivalent() {
        let src = "
            entity e is
              port(s : in bits(2); y : out bits(2));
            comb begin
              case s is
                when 0 => y <= 1;
                when 1 => y <= 2;
                when others => y <= 0;
              end case;
            end;
            end;
        ";
        let design = checked(src);
        let mut arm0 = None;
        for process in &design.design().entities[0].processes {
            walk_stmts(&process.body, &mut |s| {
                if let Stmt::Case { arms, .. } = s {
                    arm0 = Some(arms[0].id);
                }
            });
        }
        let classes = screen_population(
            &design,
            "e",
            &[
                // 0 -> 0 identity.
                mutant(arm0.unwrap(), Rewrite::CaseChoice { index: 0, value: 0 }),
                // 0 -> 2: removing 0 (falls to others) and capturing 2 both matter.
                mutant(arm0.unwrap(), Rewrite::CaseChoice { index: 0, value: 2 }),
            ],
        );
        assert!(classes[0].is_proven());
        assert!(!classes[1].is_proven());
    }

    #[test]
    fn stuck_condition_matching_constant_cond_is_equivalent() {
        let src = "
            entity e is
              port(a : in bit; y : out bit);
            constant K : bit := 1;
            comb begin
              if K = 1 then
                y <= a;
              else
                y <= not a;
              end if;
            end;
            end;
        ";
        let design = checked(src);
        let cond = find_binary(&design, BinOp::Eq);
        let classes = screen_population(
            &design,
            "e",
            &[
                mutant(cond, Rewrite::StuckCondition { value: true }),
                mutant(cond, Rewrite::StuckCondition { value: false }),
            ],
        );
        assert!(classes[0].is_proven(), "condition already always true");
        assert!(!classes[1].is_proven());
    }

    #[test]
    fn insert_not_is_never_locally_equivalent() {
        let design = checked(B01_LIKE);
        let site = find_binary(&design, BinOp::Eq);
        let classes = screen_population(&design, "e", &[mutant(site, Rewrite::InsertNot)]);
        assert!(!classes[0].is_proven());
    }

    #[test]
    fn unknown_entity_and_unknown_site_are_viable() {
        let design = checked(B01_LIKE);
        let m = mutant(NodeId(999_999), Rewrite::DeleteStmt);
        assert!(!screen_population(&design, "nosuch", std::slice::from_ref(&m))[0].is_proven());
        assert!(!screen_population(&design, "e", &[m])[0].is_proven());
    }

    #[test]
    fn wide_free_space_bails_to_viable() {
        // 2 × 32-bit operands exceed MAX_FREE_BITS: even a genuinely
        // equivalent-looking rewrite must stay Viable.
        let src = "
            entity e is
              port(a : in bits(32); b : in bits(32); y : out bit);
            comb begin y <= a = b; end;
            end;
        ";
        let design = checked(src);
        let site = find_binary(&design, BinOp::Eq);
        let classes = screen_population(
            &design,
            "e",
            &[mutant(site, Rewrite::BinOp { new: BinOp::Eq })],
        );
        // Identity rewrite, but unprovable within budget.
        assert!(!classes[0].is_proven());
    }
}
