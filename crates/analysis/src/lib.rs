//! Static analysis for MiniHDL designs.
//!
//! Three layers built on one dataflow core:
//!
//! * [`dataflow`] — constant folding, statement reachability and
//!   assigned-vs-read signal accounting over the AST;
//! * [`lint`] — a catalog of span-carrying diagnostics (`musa lint`);
//! * [`screen`] — the static equivalent-mutant pre-screen behind
//!   `--screen static`: mutants proven equivalent here skip simulation
//!   and fold directly into the `E` term of `MS = K/(M−E)`.

#![forbid(unsafe_code)]

pub mod dataflow;
pub mod lint;
pub mod screen;

pub use lint::{lint_design, LintFinding, LintRule, LINT_RULES};
pub use screen::{screen_population, ScreenClass, MAX_FREE_BITS};

pub use dataflow::{
    analyze_dead, decl_widths, fold_expr, infer_width, ConstEnv, Deadness, EntityFacts, FoldValue,
};
