//! The lint catalog: span-carrying diagnostics over *parsed* designs.
//!
//! Lints run before (and independently of) semantic checking: several
//! rules diagnose exactly the situations [`musa_hdl::CheckedDesign`]
//! rejects outright (multi-driven values, combinational cycles,
//! duplicate case choices), so requiring a checked design would make
//! them unreachable. Width- and constant-dependent rules degrade
//! gracefully when a width cannot be inferred from declarations.

use crate::dataflow::{
    analyze_dead, decl_widths, fold_expr, infer_width, ConstEnv, EntityFacts,
};
use musa_hdl::ast::{Design, Entity, PortDir, Select, Stmt};
use musa_hdl::Span;
use std::collections::{HashMap, HashSet};

/// One rule of the lint catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LintRule {
    /// A statement that can never execute (constant guard, matched
    /// constant case subject, or empty loop range).
    DeadStatement,
    /// A signal or constant that is never read anywhere.
    UnreadSignal,
    /// A signal that is written and read, but whose value can never
    /// reach an output port.
    WriteOnlyCone,
    /// An `if` condition that folds to a constant.
    ConstantCondition,
    /// A `case` without `when others` that does not cover every
    /// subject value (latch inference risk).
    IncompleteCase,
    /// An assignment whose value is wider than its target.
    WidthTruncation,
    /// A case choice value repeated across or within arms.
    DuplicateCaseChoice,
    /// Combinational processes forming a dependency cycle (including a
    /// process reading a signal it drives).
    CombLoop,
    /// A signal or output port driven by more than one process.
    MultiDriven,
}

/// Every rule, in catalog order.
pub const LINT_RULES: [LintRule; 9] = [
    LintRule::DeadStatement,
    LintRule::UnreadSignal,
    LintRule::WriteOnlyCone,
    LintRule::ConstantCondition,
    LintRule::IncompleteCase,
    LintRule::WidthTruncation,
    LintRule::DuplicateCaseChoice,
    LintRule::CombLoop,
    LintRule::MultiDriven,
];

impl LintRule {
    /// Stable kebab-case identifier (used in text and JSON output).
    pub fn slug(self) -> &'static str {
        match self {
            LintRule::DeadStatement => "dead-statement",
            LintRule::UnreadSignal => "unread-signal",
            LintRule::WriteOnlyCone => "write-only-cone",
            LintRule::ConstantCondition => "constant-condition",
            LintRule::IncompleteCase => "incomplete-case",
            LintRule::WidthTruncation => "width-truncation",
            LintRule::DuplicateCaseChoice => "duplicate-case-choice",
            LintRule::CombLoop => "comb-loop",
            LintRule::MultiDriven => "multi-driven",
        }
    }

    /// One-line description for catalogs and docs.
    pub fn description(self) -> &'static str {
        match self {
            LintRule::DeadStatement => "statement can never execute",
            LintRule::UnreadSignal => "signal or constant is never read",
            LintRule::WriteOnlyCone => "signal value never reaches an output",
            LintRule::ConstantCondition => "condition is constant",
            LintRule::IncompleteCase => "case without `when others` misses values",
            LintRule::WidthTruncation => "assignment truncates its value",
            LintRule::DuplicateCaseChoice => "case choice value repeated",
            LintRule::CombLoop => "combinational dependency cycle",
            LintRule::MultiDriven => "value driven by multiple processes",
        }
    }
}

/// One diagnostic produced by [`lint_design`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// The rule that fired.
    pub rule: LintRule,
    /// The entity the finding is in.
    pub entity: String,
    /// Source location (may be [`Span::dummy`] for synthesized nodes).
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

/// Runs the whole catalog over a parsed design.
///
/// Findings are sorted by entity (declaration order), then source
/// position, then rule slug, so output is deterministic.
pub fn lint_design(design: &Design) -> Vec<LintFinding> {
    let mut findings: Vec<(usize, LintFinding)> = Vec::new();
    for (idx, entity) in design.entities.iter().enumerate() {
        let mut emit = |rule: LintRule, span: Span, message: String| {
            findings.push((
                idx,
                LintFinding {
                    rule,
                    entity: entity.name.name.clone(),
                    span,
                    message,
                },
            ));
        };
        lint_entity(entity, &mut emit);
    }
    findings.sort_by(|(ia, a), (ib, b)| {
        (ia, a.span.lo, a.rule.slug()).cmp(&(ib, b.span.lo, b.rule.slug()))
    });
    findings.into_iter().map(|(_, f)| f).collect()
}

fn lint_entity(entity: &Entity, emit: &mut impl FnMut(LintRule, Span, String)) {
    let env = ConstEnv::from_entity(entity);
    let facts = EntityFacts::new(entity);
    let top_widths = decl_widths(entity);

    structure_rules(entity, &facts, emit);

    for process in &entity.processes {
        let dead = analyze_dead(&process.body, &env, None);
        for &(_, span) in &dead.roots {
            emit(
                LintRule::DeadStatement,
                span,
                "statement can never execute".to_owned(),
            );
        }
        // Local variables shadow nothing (names are unique), but their
        // widths matter for truncation checks inside this process.
        let mut widths = top_widths.clone();
        for var in &process.vars {
            widths.insert(var.name.name.clone(), var.width);
        }
        musa_hdl::ast::walk_stmts(&process.body, &mut |stmt| {
            if dead.nodes.contains(&stmt.id()) {
                return; // already reported as part of a dead region
            }
            stmt_rules(stmt, &env, &widths, &dead.nodes, emit);
        });
    }
}

/// Entity-level rules: unread names, write-only cones, multi-driven
/// values and combinational cycles.
fn structure_rules(
    entity: &Entity,
    facts: &EntityFacts,
    emit: &mut impl FnMut(LintRule, Span, String),
) {
    let read: HashSet<&str> = facts.read_anywhere();

    for signal in &entity.signals {
        if !read.contains(signal.name.name.as_str()) {
            emit(
                LintRule::UnreadSignal,
                signal.name.span,
                format!("signal `{}` is never read", signal.name.name),
            );
        }
    }
    for cst in &entity.consts {
        if !read.contains(cst.name.name.as_str()) {
            emit(
                LintRule::UnreadSignal,
                cst.name.span,
                format!("constant `{}` is never read", cst.name.name),
            );
        }
    }

    let cone = facts.output_cone(entity);
    for signal in &entity.signals {
        let name = signal.name.name.as_str();
        let written = facts.writes.iter().any(|w| w.contains(name));
        if written && read.contains(name) && !cone.contains(name) {
            emit(
                LintRule::WriteOnlyCone,
                signal.name.span,
                format!("signal `{name}` is read but its value never reaches an output"),
            );
        }
    }

    // Multi-driven: a name `<=`-assigned by two or more processes.
    let mut driver_count: HashMap<&str, usize> = HashMap::new();
    for writes in &facts.writes {
        for name in writes {
            *driver_count.entry(name.as_str()).or_insert(0) += 1;
        }
    }
    let decl_span = |name: &str| {
        entity
            .signals
            .iter()
            .map(|s| (&s.name.name, s.name.span))
            .chain(entity.ports.iter().map(|p| (&p.name.name, p.name.span)))
            .find(|(n, _)| n.as_str() == name)
            .map_or(Span::dummy(), |(_, span)| span)
    };
    let mut multi: Vec<(&str, usize)> = driver_count
        .iter()
        .filter(|&(_, &n)| n >= 2)
        .map(|(&name, &n)| (name, n))
        .collect();
    multi.sort_unstable();
    for (name, n) in multi {
        emit(
            LintRule::MultiDriven,
            decl_span(name),
            format!("`{name}` is driven by {n} processes"),
        );
    }

    let cycle = facts.comb_cycle(entity);
    if !cycle.is_empty() {
        let mut names: Vec<&str> = cycle
            .iter()
            .flat_map(|&p| facts.writes[p].iter().map(String::as_str))
            .collect();
        names.sort_unstable();
        names.dedup();
        let span = names.first().map_or(Span::dummy(), |n| decl_span(n));
        emit(
            LintRule::CombLoop,
            span,
            format!("combinational cycle through: {}", names.join(", ")),
        );
    }

    // Input ports that are never read get the unread treatment too?
    // No: unused inputs are an interface contract, not a bug — the
    // catalog stays at signals and constants.
    let _ = PortDir::In;
}

/// Statement-level rules: constant conditions, incomplete cases,
/// duplicate choices and width truncation.
fn stmt_rules(
    stmt: &Stmt,
    env: &ConstEnv,
    widths: &HashMap<String, u32>,
    dead: &HashSet<musa_hdl::ast::NodeId>,
    emit: &mut impl FnMut(LintRule, Span, String),
) {
    match stmt {
        Stmt::If { arms, .. } => {
            for (cond, _) in arms {
                if dead.contains(&cond.id()) {
                    continue;
                }
                if let Some(v) = fold_expr(cond, env, None) {
                    let verdict = if v.as_bool() { "true" } else { "false" };
                    emit(
                        LintRule::ConstantCondition,
                        cond.span(),
                        format!("condition is always {verdict}"),
                    );
                }
            }
        }
        Stmt::Case {
            subject,
            arms,
            default,
            ..
        } => {
            // Duplicate choices: first repeat of each value, scanning
            // arms in match order.
            let mut seen: HashSet<u64> = HashSet::new();
            let mut reported: HashSet<u64> = HashSet::new();
            for arm in arms {
                for &choice in &arm.choices {
                    if !seen.insert(choice) && reported.insert(choice) {
                        emit(
                            LintRule::DuplicateCaseChoice,
                            subject.span(),
                            format!("case choice {choice} is repeated"),
                        );
                    }
                }
            }
            if default.is_none() {
                let missing = match infer_width(subject, widths) {
                    Some(w) if w < 64 => {
                        let covered = seen.iter().filter(|&&c| c < (1u64 << w)).count() as u64;
                        (covered < (1u64 << w)).then(|| {
                            format!(
                                "case covers {covered} of {} subject values and has no `when others`",
                                1u64 << w
                            )
                        })
                    }
                    Some(_) => Some(
                        "case over a 64-bit subject cannot cover all values without `when others`"
                            .to_owned(),
                    ),
                    None => Some("case has no `when others`".to_owned()),
                };
                if let Some(message) = missing {
                    emit(LintRule::IncompleteCase, subject.span(), message);
                }
            }
        }
        Stmt::Assign { target, value, .. } => {
            let target_width = match &target.sel {
                Some(Select::Index(_)) => Some(1),
                Some(Select::Slice { hi, lo }) => (hi >= lo).then(|| hi - lo + 1),
                None => widths.get(&target.base.name).copied(),
            };
            if let (Some(tw), Some(vw)) = (target_width, infer_width(value, widths)) {
                if vw > tw {
                    emit(
                        LintRule::WidthTruncation,
                        stmt.span(),
                        format!(
                            "assignment truncates a {vw}-bit value into the {tw}-bit target `{}`",
                            target.base.name
                        ),
                    );
                }
            }
        }
        Stmt::For { .. } | Stmt::Null { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::parse;

    /// Parses (without checking) and lints, returning `(slug, message)`
    /// pairs in report order.
    fn lint(src: &str) -> Vec<(&'static str, String)> {
        let design = parse(src).unwrap();
        lint_design(&design)
            .into_iter()
            .map(|f| (f.rule.slug(), f.message))
            .collect()
    }

    fn slugs(src: &str) -> Vec<&'static str> {
        lint(src).into_iter().map(|(s, _)| s).collect()
    }

    #[test]
    fn clean_design_has_no_findings() {
        let src = "
            entity e is
              port(a : in bits(2); y : out bits(2));
            signal t : bits(2);
            comb begin t <= a; end;
            comb begin
              case t is
                when 0 => y <= 1;
                when others => y <= t;
              end case;
            end;
            end;
        ";
        assert!(lint(src).is_empty(), "{:?}", lint(src));
    }

    #[test]
    fn dead_statement_positive_and_negative() {
        let dirty = "
            entity e is
              port(a : in bit; y : out bit);
            constant K : bit := 0;
            comb begin
              if K = 1 then
                y <= not a;
              else
                y <= a;
              end if;
            end;
            end;
        ";
        // The dead arm plus the constant condition that kills it.
        let got = slugs(dirty);
        assert!(got.contains(&"dead-statement"), "{got:?}");
        let clean = "
            entity e is
              port(a : in bit; y : out bit);
            comb begin
              if a = 1 then y <= 0; else y <= 1; end if;
            end;
            end;
        ";
        assert!(!slugs(clean).contains(&"dead-statement"));
    }

    #[test]
    fn unread_signal_positive_and_negative() {
        let dirty = "
            entity e is
              port(a : in bit; y : out bit);
            signal ghost : bit;
            constant K : bits(2) := 1;
            comb begin ghost <= a; y <= a; end;
            end;
        ";
        let got = lint(dirty);
        assert!(
            got.iter()
                .any(|(s, m)| *s == "unread-signal" && m.contains("ghost")),
            "{got:?}"
        );
        assert!(
            got.iter()
                .any(|(s, m)| *s == "unread-signal" && m.contains("K")),
            "{got:?}"
        );
        let clean = "
            entity e is
              port(a : in bit; y : out bit);
            signal t : bit;
            comb begin t <= a; end;
            comb begin y <= t; end;
            end;
        ";
        assert!(!slugs(clean).contains(&"unread-signal"));
    }

    #[test]
    fn write_only_cone_positive_and_negative() {
        // `u` and `v` feed only each other, never an output.
        let dirty = "
            entity e is
              port(a : in bit; y : out bit);
            signal u : bit;
            signal v : bit;
            comb begin u <= a; end;
            comb begin v <= u; end;
            comb begin y <= a; end;
            end;
        ";
        let got = lint(dirty);
        assert!(
            got.iter()
                .any(|(s, m)| *s == "write-only-cone" && m.contains("`u`")),
            "{got:?}"
        );
        let clean = "
            entity e is
              port(a : in bit; y : out bit);
            signal t : bit;
            comb begin t <= a; end;
            comb begin y <= t; end;
            end;
        ";
        assert!(!slugs(clean).contains(&"write-only-cone"));
    }

    #[test]
    fn constant_condition_positive_and_negative() {
        let dirty = "
            entity e is
              port(a : in bit; y : out bit);
            comb begin
              if 1 = 1 then y <= a; else y <= 0; end if;
            end;
            end;
        ";
        let got = lint(dirty);
        assert!(
            got.iter()
                .any(|(s, m)| *s == "constant-condition" && m.contains("always true")),
            "{got:?}"
        );
        let clean = "
            entity e is
              port(a : in bit; y : out bit);
            comb begin
              if a = 1 then y <= 0; else y <= 1; end if;
            end;
            end;
        ";
        assert!(!slugs(clean).contains(&"constant-condition"));
    }

    #[test]
    fn incomplete_case_positive_and_negative() {
        let dirty = "
            entity e is
              port(s : in bits(2); y : out bit);
            comb begin
              case s is
                when 0 => y <= 1;
                when 1 => y <= 0;
              end case;
            end;
            end;
        ";
        let got = lint(dirty);
        assert!(
            got.iter()
                .any(|(s, m)| *s == "incomplete-case" && m.contains("2 of 4")),
            "{got:?}"
        );
        // Full enumeration without `when others` is complete.
        let clean = "
            entity e is
              port(s : in bit; y : out bit);
            comb begin
              case s is
                when 0 => y <= 1;
                when 1 => y <= 0;
              end case;
            end;
            end;
        ";
        assert!(!slugs(clean).contains(&"incomplete-case"));
    }

    #[test]
    fn width_truncation_positive_and_negative() {
        let dirty = "
            entity e is
              port(a : in bits(4); b : in bits(4); y : out bits(4));
            comb begin y <= a & b; end;
            end;
        ";
        let got = lint(dirty);
        assert!(
            got.iter()
                .any(|(s, m)| *s == "width-truncation" && m.contains("8-bit value")),
            "{got:?}"
        );
        let clean = "
            entity e is
              port(a : in bits(4); y : out bits(4));
            comb begin y <= a; end;
            end;
        ";
        assert!(!slugs(clean).contains(&"width-truncation"));
    }

    #[test]
    fn duplicate_case_choice_positive_and_negative() {
        let dirty = "
            entity e is
              port(s : in bits(2); y : out bit);
            comb begin
              case s is
                when 0 => y <= 1;
                when 0 => y <= 0;
                when others => y <= 0;
              end case;
            end;
            end;
        ";
        let got = lint(dirty);
        assert!(
            got.iter()
                .any(|(s, m)| *s == "duplicate-case-choice" && m.contains("choice 0")),
            "{got:?}"
        );
        let clean = "
            entity e is
              port(s : in bits(2); y : out bit);
            comb begin
              case s is
                when 0 => y <= 1;
                when 1 => y <= 0;
                when others => y <= 0;
              end case;
            end;
            end;
        ";
        assert!(!slugs(clean).contains(&"duplicate-case-choice"));
    }

    #[test]
    fn comb_loop_positive_and_negative() {
        let dirty = "
            entity e is
              port(y : out bit);
            signal s : bit;
            comb begin s <= not s; end;
            comb begin y <= s; end;
            end;
        ";
        let got = lint(dirty);
        assert!(
            got.iter()
                .any(|(s, m)| *s == "comb-loop" && m.contains("s")),
            "{got:?}"
        );
        let clean = "
            entity e is
              port(clk : in bit; y : out bit);
            signal s : bit;
            seq(clk) begin s <= not s; end;
            comb begin y <= s; end;
            end;
        ";
        assert!(!slugs(clean).contains(&"comb-loop"));
    }

    #[test]
    fn multi_driven_positive_and_negative() {
        let dirty = "
            entity e is
              port(a : in bit; y : out bit);
            signal t : bit;
            comb begin t <= a; end;
            comb begin t <= not a; end;
            comb begin y <= t; end;
            end;
        ";
        let got = lint(dirty);
        assert!(
            got.iter()
                .any(|(s, m)| *s == "multi-driven" && m.contains("2 processes")),
            "{got:?}"
        );
        let clean = "
            entity e is
              port(a : in bit; y : out bit);
            signal t : bit;
            comb begin t <= a; y <= t; end;
            end;
        ";
        assert!(!slugs(clean).contains(&"multi-driven"));
    }

    #[test]
    fn findings_are_sorted_and_span_lines_resolve() {
        let src = "entity e is
  port(a : in bit; y : out bit);
signal ghost : bit;
comb begin ghost <= a; y <= a; end;
end;
";
        let design = parse(src).unwrap();
        let findings = lint_design(&design);
        assert_eq!(findings.len(), 1);
        let (line, col) = findings[0].span.line_col(src);
        assert_eq!(line, 3, "ghost is declared on line 3");
        assert!(col > 1);
        assert_eq!(findings[0].entity, "e");
    }
}
