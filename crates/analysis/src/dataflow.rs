//! Dataflow facts over the MiniHDL AST.
//!
//! Everything here is deliberately independent of the checker's
//! verdict: the lint catalog runs on *parsed* designs (many lint rules
//! diagnose exactly the situations the checker rejects outright), so
//! all facts degrade gracefully when widths or names cannot be
//! resolved. When checked side tables are available (the mutant
//! pre-screen), the per-node width oracle makes folding exact.
//!
//! The facts provided:
//!
//! * [`fold_expr`] — constant propagation and folding mirroring the
//!   simulator's evaluation semantics;
//! * [`analyze_dead`] — statement reachability under constant
//!   conditions, constant case subjects and empty loop ranges;
//! * [`EntityFacts`] — assigned-vs-read signal accounting per process,
//!   with the transitive output read-cone and combinational-cycle
//!   detection built on top.

use musa_hdl::ast::{
    BinOp, ConstDecl, Entity, Expr, NodeId, PortDir, Process, ReduceOp, Select, ShiftOp, Stmt,
    walk_exprs, walk_stmts,
};
use musa_hdl::Span;
use std::collections::{HashMap, HashSet};

/// All-ones mask for a width (widths above 64 saturate).
pub(crate) fn mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// A folded compile-time value: the value plus its width when known.
///
/// Decimal literals have no intrinsic width (they adopt the width of
/// their context, like the checker), so `width` is `None` until a
/// widthful operand fixes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldValue {
    /// The folded value, masked to `width` when one is known.
    pub value: u64,
    /// Bit width, when the expression fixes one.
    pub width: Option<u32>,
}

impl FoldValue {
    /// Creates a fold value, masking to the width when one is known.
    pub fn new(value: u64, width: Option<u32>) -> Self {
        let value = match width {
            Some(w) => value & mask(w),
            None => value,
        };
        Self { value, width }
    }

    /// Truth interpretation: any set bit.
    pub fn as_bool(self) -> bool {
        self.value != 0
    }
}

/// Compile-time constant bindings visible to the folder, by name.
#[derive(Debug, Clone, Default)]
pub struct ConstEnv {
    bindings: HashMap<String, FoldValue>,
}

impl ConstEnv {
    /// An environment holding an entity's named constants.
    pub fn from_entity(entity: &Entity) -> Self {
        let mut env = Self::default();
        for cst in &entity.consts {
            env.bind(&cst.name.name, FoldValue::new(cst.value, Some(cst.width)));
        }
        env
    }

    /// Adds or replaces a binding.
    pub fn bind(&mut self, name: &str, value: FoldValue) {
        self.bindings.insert(name.to_owned(), value);
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<FoldValue> {
        self.bindings.get(name).copied()
    }
}

/// Folds an expression to a constant when every leaf is known.
///
/// `widths` is an optional per-node width oracle (the checker's side
/// table); with it, decimal literals fold exactly as the simulator
/// evaluates them. Returns `None` when the expression depends on a
/// non-constant leaf or when widths cannot be reconciled.
///
/// Semantics mirror the simulator: dynamic index reads out of range
/// yield 0, arithmetic wraps modulo the operand width, comparisons
/// produce one bit.
pub fn fold_expr(
    expr: &Expr,
    env: &ConstEnv,
    widths: Option<&HashMap<NodeId, u32>>,
) -> Option<FoldValue> {
    let oracle = |id: &NodeId| widths.and_then(|m| m.get(id).copied());
    match expr {
        Expr::Literal {
            id, value, width, ..
        } => Some(FoldValue::new(*value, width.or_else(|| oracle(id)))),
        Expr::Ref { id, name } => {
            let bound = env.get(&name.name)?;
            Some(FoldValue::new(
                bound.value,
                bound.width.or_else(|| oracle(id)),
            ))
        }
        Expr::Index { base, index, .. } => {
            let base = fold_expr(base, env, widths)?;
            let index = fold_expr(index, env, widths)?;
            let width = base.width?;
            let bit = if index.value >= u64::from(width) {
                0 // out-of-range dynamic reads yield 0 in the simulator
            } else {
                (base.value >> index.value) & 1
            };
            Some(FoldValue::new(bit, Some(1)))
        }
        Expr::Slice { base, hi, lo, .. } => {
            let base = fold_expr(base, env, widths)?;
            if hi < lo || *hi >= 64 {
                return None;
            }
            let w = hi - lo + 1;
            Some(FoldValue::new((base.value >> lo) & mask(w), Some(w)))
        }
        Expr::Unary { arg, .. } => {
            let arg = fold_expr(arg, env, widths)?;
            let w = arg.width?;
            Some(FoldValue::new(!arg.value, Some(w)))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let lhs = fold_expr(lhs, env, widths)?;
            let rhs = fold_expr(rhs, env, widths)?;
            fold_binary(*op, lhs, rhs)
        }
        Expr::Reduce { op, arg, .. } => {
            let arg = fold_expr(arg, env, widths)?;
            let bit = match op {
                ReduceOp::Or => u64::from(arg.value != 0),
                ReduceOp::And => {
                    let w = arg.width?;
                    u64::from(arg.value == mask(w))
                }
                ReduceOp::Xor => u64::from(arg.value.count_ones() % 2),
            };
            Some(FoldValue::new(bit, Some(1)))
        }
        Expr::Concat { lhs, rhs, .. } => {
            let lhs = fold_expr(lhs, env, widths)?;
            let rhs = fold_expr(rhs, env, widths)?;
            let (lw, rw) = (lhs.width?, rhs.width?);
            if lw + rw > 64 {
                return None;
            }
            Some(FoldValue::new((lhs.value << rw) | rhs.value, Some(lw + rw)))
        }
        Expr::Shift { op, arg, amount, .. } => {
            let arg = fold_expr(arg, env, widths)?;
            match op {
                ShiftOp::Left => {
                    let w = arg.width?;
                    let v = if *amount >= 64 { 0 } else { arg.value << amount };
                    Some(FoldValue::new(v, Some(w)))
                }
                ShiftOp::Right => {
                    let v = if *amount >= 64 { 0 } else { arg.value >> amount };
                    Some(FoldValue::new(v, arg.width))
                }
            }
        }
    }
}

/// Folds one binary operation, unifying operand widths the way the
/// checker does: a width-less (decimal-literal) operand adopts the
/// other side's width; two known-but-different widths do not fold.
fn fold_binary(op: BinOp, lhs: FoldValue, rhs: FoldValue) -> Option<FoldValue> {
    let width = match (lhs.width, rhs.width) {
        (Some(a), Some(b)) if a != b => return None,
        (Some(a), _) | (_, Some(a)) => Some(a),
        (None, None) => None,
    };
    let (a, b) = match width {
        Some(w) => (lhs.value & mask(w), rhs.value & mask(w)),
        None => (lhs.value, rhs.value),
    };
    if op.is_relational() {
        let bit = match op {
            BinOp::Eq => a == b,
            BinOp::Ne => a != b,
            BinOp::Lt => a < b,
            BinOp::Le => a <= b,
            BinOp::Gt => a > b,
            BinOp::Ge => a >= b,
            _ => unreachable!(),
        };
        return Some(FoldValue::new(u64::from(bit), Some(1)));
    }
    // Logical and arithmetic results keep the operand width, which must
    // therefore be known.
    let w = width?;
    let value = match op {
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Nand => !(a & b),
        BinOp::Nor => !(a | b),
        BinOp::Xnor => !(a ^ b),
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        _ => unreachable!(),
    };
    Some(FoldValue::new(value, Some(w)))
}

/// Reachability analysis of one statement list.
#[derive(Debug, Default)]
pub struct Deadness {
    /// Every node id — statements, their expressions, assignment
    /// targets and case arms — lying inside a dead region. A mutation
    /// whose site is in this set cannot change observable behaviour.
    ///
    /// Case arms of a *live* `case` with a constant subject are **not**
    /// included even when their body is dead: rewriting a choice can
    /// make such an arm match again. Their bodies are included.
    pub nodes: HashSet<NodeId>,
    /// Maximal dead regions as `(first statement id, covering span)`.
    pub roots: Vec<(NodeId, Span)>,
}

/// Computes statement reachability under constant folding.
///
/// A region is dead when it is guarded by a condition that folds to a
/// constant making it unreachable: a false `if` arm, arms after a true
/// condition, non-matching arms of a constant `case` subject, the
/// default of a matched constant `case`, or a `for` with an empty
/// range.
pub fn analyze_dead(
    stmts: &[Stmt],
    env: &ConstEnv,
    widths: Option<&HashMap<NodeId, u32>>,
) -> Deadness {
    let mut dead = Deadness::default();
    scan_live(stmts, env, widths, &mut dead);
    dead
}

fn scan_live(
    stmts: &[Stmt],
    env: &ConstEnv,
    widths: Option<&HashMap<NodeId, u32>>,
    dead: &mut Deadness,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { .. } | Stmt::Null { .. } => {}
            Stmt::If {
                arms, else_body, ..
            } => {
                let mut taken = false;
                for (cond, body) in arms {
                    if taken {
                        // Never evaluated: the condition itself is dead.
                        mark_expr(cond, &mut dead.nodes);
                        kill_body(body, dead);
                        continue;
                    }
                    match fold_expr(cond, env, widths) {
                        Some(v) if !v.as_bool() => kill_body(body, dead),
                        Some(_) => {
                            taken = true;
                            scan_live(body, env, widths, dead);
                        }
                        None => scan_live(body, env, widths, dead),
                    }
                }
                if let Some(body) = else_body {
                    if taken {
                        kill_body(body, dead);
                    } else {
                        scan_live(body, env, widths, dead);
                    }
                }
            }
            Stmt::Case {
                subject,
                arms,
                default,
                ..
            } => match fold_expr(subject, env, widths) {
                Some(v) => {
                    let mut matched = false;
                    for arm in arms {
                        if !matched && arm.choices.contains(&v.value) {
                            matched = true;
                            scan_live(&arm.body, env, widths, dead);
                        } else {
                            kill_body(&arm.body, dead);
                        }
                    }
                    if let Some(body) = default {
                        if matched {
                            kill_body(body, dead);
                        } else {
                            scan_live(body, env, widths, dead);
                        }
                    }
                }
                None => {
                    for arm in arms {
                        scan_live(&arm.body, env, widths, dead);
                    }
                    if let Some(body) = default {
                        scan_live(body, env, widths, dead);
                    }
                }
            },
            Stmt::For { lo, hi, body, .. } => {
                if lo > hi {
                    kill_body(body, dead);
                } else {
                    scan_live(body, env, widths, dead);
                }
            }
        }
    }
}

/// Records a dead body: one maximal root plus every node id inside.
fn kill_body(stmts: &[Stmt], dead: &mut Deadness) {
    let Some(first) = stmts.first() else { return };
    let span = stmts
        .iter()
        .map(Stmt::span)
        .fold(Span::dummy(), |acc, s| {
            if acc == Span::dummy() {
                s
            } else if s == Span::dummy() {
                acc
            } else {
                acc.merge(s)
            }
        });
    dead.roots.push((first.id(), span));
    mark_all(stmts, &mut dead.nodes);
}

/// Marks every node id in a statement list (statements, expressions,
/// targets, case arms) as dead.
fn mark_all(stmts: &[Stmt], nodes: &mut HashSet<NodeId>) {
    walk_stmts(stmts, &mut |stmt| {
        nodes.insert(stmt.id());
        match stmt {
            Stmt::Assign { target, value, .. } => {
                nodes.insert(target.id);
                if let Some(Select::Index(ix)) = &target.sel {
                    mark_expr(ix, nodes);
                }
                mark_expr(value, nodes);
            }
            Stmt::If { arms, .. } => {
                for (cond, _) in arms {
                    mark_expr(cond, nodes);
                }
            }
            Stmt::Case { subject, arms, .. } => {
                mark_expr(subject, nodes);
                for arm in arms {
                    nodes.insert(arm.id);
                }
            }
            Stmt::For { .. } | Stmt::Null { .. } => {}
        }
    });
}

fn mark_expr(expr: &Expr, nodes: &mut HashSet<NodeId>) {
    expr.walk(&mut |e| {
        nodes.insert(e.id());
    });
}

/// Assigned-vs-read accounting for one entity, by top-level name.
///
/// Process-local variables and loop indices are excluded: reads and
/// writes record only ports, constants and signals, which is what the
/// unread/write-only/multi-driven lint rules and the output read-cone
/// reason about.
#[derive(Debug)]
pub struct EntityFacts {
    /// Per process: top-level names read (in conditions, subjects,
    /// assignment values and target indices).
    pub reads: Vec<HashSet<String>>,
    /// Per process: top-level names driven with `<=`.
    pub writes: Vec<HashSet<String>>,
}

impl EntityFacts {
    /// Collects read/write facts for every process of an entity.
    pub fn new(entity: &Entity) -> Self {
        let mut reads = Vec::with_capacity(entity.processes.len());
        let mut writes = Vec::with_capacity(entity.processes.len());
        for process in &entity.processes {
            let locals = process_locals(process);
            let mut read = HashSet::new();
            walk_exprs(&process.body, &mut |e| {
                if let Expr::Ref { name, .. } = e {
                    if !locals.contains(&name.name) {
                        read.insert(name.name.clone());
                    }
                }
            });
            let mut written = HashSet::new();
            walk_stmts(&process.body, &mut |s| {
                if let Stmt::Assign { kind, target, .. } = s {
                    if matches!(kind, musa_hdl::ast::AssignKind::Signal)
                        && !locals.contains(&target.base.name)
                    {
                        written.insert(target.base.name.clone());
                    }
                }
            });
            reads.push(read);
            writes.push(written);
        }
        Self { reads, writes }
    }

    /// Every top-level name read by any process.
    pub fn read_anywhere(&self) -> HashSet<&str> {
        self.reads
            .iter()
            .flat_map(|r| r.iter().map(String::as_str))
            .collect()
    }

    /// The transitive output read-cone: names whose value can reach an
    /// output port, at process granularity.
    ///
    /// Starts from the output ports and repeatedly adds everything read
    /// by a process that writes a name already in the cone. A written,
    /// read signal *outside* this set can never influence an output.
    pub fn output_cone(&self, entity: &Entity) -> HashSet<String> {
        let mut cone: HashSet<String> = entity
            .ports
            .iter()
            .filter(|p| p.dir == PortDir::Out)
            .map(|p| p.name.name.clone())
            .collect();
        loop {
            let mut changed = false;
            for (written, read) in self.writes.iter().zip(&self.reads) {
                if written.iter().any(|w| cone.contains(w)) {
                    for r in read {
                        changed |= cone.insert(r.clone());
                    }
                }
            }
            if !changed {
                return cone;
            }
        }
    }

    /// Detects combinational cycles among `comb` processes, including
    /// self-reads, via Kahn's algorithm on the process dependency
    /// graph. Returns the process indices stuck on a cycle (empty when
    /// acyclic).
    pub fn comb_cycle(&self, entity: &Entity) -> Vec<usize> {
        let comb: Vec<usize> = entity
            .processes
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p.kind, musa_hdl::ast::ProcessKind::Comb))
            .map(|(i, _)| i)
            .collect();
        // Edge p -> q when q reads something p writes (p must settle
        // first). A self-edge (a process reading its own output) is a
        // cycle on its own.
        let mut indegree: HashMap<usize, usize> = comb.iter().map(|&i| (i, 0)).collect();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for &p in &comb {
            for &q in &comb {
                let depends = self.writes[p].iter().any(|w| self.reads[q].contains(w));
                if depends {
                    edges.push((p, q));
                    *indegree.get_mut(&q).expect("comb process") += 1;
                }
            }
        }
        let mut queue: Vec<usize> = comb
            .iter()
            .copied()
            .filter(|i| indegree[i] == 0)
            .collect();
        while let Some(p) = queue.pop() {
            for &(from, to) in &edges {
                if from == p {
                    let d = indegree.get_mut(&to).expect("comb process");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(to);
                    }
                }
            }
        }
        // Kahn leaves both the cycle and everything downstream of it
        // unresolved; report only genuine cycle members (nodes that can
        // reach themselves through stuck nodes).
        let stuck: HashSet<usize> = comb.into_iter().filter(|i| indegree[i] > 0).collect();
        let mut on_cycle: Vec<usize> = stuck
            .iter()
            .copied()
            .filter(|&p| {
                let mut seen = HashSet::new();
                let mut frontier = vec![p];
                while let Some(n) = frontier.pop() {
                    for &(from, to) in &edges {
                        if from == n && stuck.contains(&to) {
                            if to == p {
                                return true;
                            }
                            if seen.insert(to) {
                                frontier.push(to);
                            }
                        }
                    }
                }
                false
            })
            .collect();
        on_cycle.sort_unstable();
        on_cycle
    }
}

/// Names local to a process: its variables plus every `for` index used
/// anywhere in its body.
fn process_locals(process: &Process) -> HashSet<String> {
    let mut locals: HashSet<String> = process.vars.iter().map(|v| v.name.name.clone()).collect();
    walk_stmts(&process.body, &mut |s| {
        if let Stmt::For { var, .. } = s {
            locals.insert(var.name.clone());
        }
    });
    locals
}

/// Infers the width of an expression from declaration widths alone
/// (no checker tables), for linting unchecked designs. Returns `None`
/// when a leaf's width is unknown.
pub fn infer_width(expr: &Expr, decls: &HashMap<String, u32>) -> Option<u32> {
    match expr {
        Expr::Literal { width, .. } => *width,
        Expr::Ref { name, .. } => decls.get(&name.name).copied(),
        Expr::Index { .. } => Some(1),
        Expr::Slice { hi, lo, .. } => {
            if hi >= lo {
                Some(hi - lo + 1)
            } else {
                None
            }
        }
        Expr::Unary { arg, .. } => infer_width(arg, decls),
        Expr::Binary { op, lhs, rhs, .. } => {
            if op.is_relational() {
                Some(1)
            } else {
                infer_width(lhs, decls).or_else(|| infer_width(rhs, decls))
            }
        }
        Expr::Reduce { .. } => Some(1),
        Expr::Concat { lhs, rhs, .. } => {
            Some(infer_width(lhs, decls)? + infer_width(rhs, decls)?)
        }
        Expr::Shift { arg, .. } => infer_width(arg, decls),
    }
}

/// Declaration widths of an entity's top-level names (ports, constants,
/// signals).
pub fn decl_widths(entity: &Entity) -> HashMap<String, u32> {
    let mut map = HashMap::new();
    for p in &entity.ports {
        map.insert(p.name.name.clone(), p.width);
    }
    for c in &entity.consts {
        map.insert(c.name.name.clone(), c.width);
    }
    for s in &entity.signals {
        map.insert(s.name.name.clone(), s.width);
    }
    map
}

/// Width of a named constant declaration, used by the pre-screen.
pub(crate) fn const_by_id(entity: &Entity, id: NodeId) -> Option<&ConstDecl> {
    entity.consts.iter().find(|c| c.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use musa_hdl::parse;

    fn entity(src: &str) -> Entity {
        parse(src).unwrap().entities.remove(0)
    }

    const GUARDED: &str = "
        entity e is
          port(a : in bits(4); y : out bits(4));
        constant K : bits(4) := 3;
        comb begin
          if K = 3 then
            y <= a;
          else
            y <= a + 1;
          end if;
        end;
        end;
    ";

    #[test]
    fn folds_constants_through_operators() {
        let ent = entity(GUARDED);
        let env = ConstEnv::from_entity(&ent);
        assert_eq!(env.get("K"), Some(FoldValue::new(3, Some(4))));
        // Fold the if condition `K = 3`.
        let Stmt::If { arms, .. } = &ent.processes[0].body[0] else {
            panic!("expected if");
        };
        let folded = fold_expr(&arms[0].0, &env, None).unwrap();
        assert_eq!(folded, FoldValue::new(1, Some(1)));
        assert!(folded.as_bool());
    }

    #[test]
    fn fold_bails_on_free_signals() {
        let ent = entity(GUARDED);
        let env = ConstEnv::from_entity(&ent);
        // `a` is an input port, not foldable.
        let Stmt::If { arms, .. } = &ent.processes[0].body[0] else {
            panic!("expected if");
        };
        let Stmt::Assign { value, .. } = &arms[0].1[0] else {
            panic!("expected assign");
        };
        assert_eq!(fold_expr(value, &env, None), None);
    }

    #[test]
    fn fold_wraps_arithmetic_and_masks() {
        let mut env = ConstEnv::default();
        env.bind("x", FoldValue::new(15, Some(4)));
        let src = "
            entity e is
              port(y : out bits(4));
            constant x : bits(4) := 15;
            comb begin y <= x + 1; end;
            end;
        ";
        let ent = entity(src);
        let Stmt::Assign { value, .. } = &ent.processes[0].body[0] else {
            panic!("expected assign");
        };
        // 15 + 1 wraps to 0 in 4 bits.
        assert_eq!(
            fold_expr(value, &env, None),
            Some(FoldValue::new(0, Some(4)))
        );
    }

    #[test]
    fn dead_else_of_constant_true_condition() {
        let ent = entity(GUARDED);
        let env = ConstEnv::from_entity(&ent);
        let dead = analyze_dead(&ent.processes[0].body, &env, None);
        assert_eq!(dead.roots.len(), 1);
        // The dead else-branch's assign is in the node set; the live
        // arm's assign is not.
        let Stmt::If { arms, else_body, .. } = &ent.processes[0].body[0] else {
            panic!("expected if");
        };
        assert!(!dead.nodes.contains(&arms[0].1[0].id()));
        assert!(dead.nodes.contains(&else_body.as_ref().unwrap()[0].id()));
    }

    #[test]
    fn constant_case_subject_kills_other_arms_but_not_their_arm_ids() {
        let src = "
            entity e is
              port(y : out bits(2));
            constant S : bits(2) := 1;
            comb begin
              case S is
                when 0 => y <= 2;
                when 1 => y <= 3;
                when others => y <= 0;
              end case;
            end;
            end;
        ";
        let ent = entity(src);
        let env = ConstEnv::from_entity(&ent);
        let dead = analyze_dead(&ent.processes[0].body, &env, None);
        let Stmt::Case { arms, default, .. } = &ent.processes[0].body[0] else {
            panic!("expected case");
        };
        // Arm 0 body dead, arm 1 body alive, default dead.
        assert!(dead.nodes.contains(&arms[0].body[0].id()));
        assert!(!dead.nodes.contains(&arms[1].body[0].id()));
        assert!(dead.nodes.contains(&default.as_ref().unwrap()[0].id()));
        // Arm ids stay live: a choice rewrite can re-arm them.
        assert!(!dead.nodes.contains(&arms[0].id));
    }

    #[test]
    fn entity_facts_account_reads_and_writes() {
        let src = "
            entity e is
              port(a : in bits(2); y : out bits(2));
            signal t : bits(2);
            signal orphan : bits(2);
            comb begin t <= a; orphan <= a; end;
            comb begin y <= t; end;
            end;
        ";
        let ent = entity(src);
        let facts = EntityFacts::new(&ent);
        assert!(facts.writes[0].contains("t"));
        assert!(facts.writes[0].contains("orphan"));
        assert!(facts.reads[1].contains("t"));
        let cone = facts.output_cone(&ent);
        assert!(cone.contains("t") && cone.contains("a"));
        // `orphan` is written from a cone process but never read into it.
        assert!(!cone.contains("orphan"));
        assert!(facts.comb_cycle(&ent).is_empty());
    }

    #[test]
    fn comb_cycle_detected_including_self_read() {
        let src = "
            entity e is
              port(y : out bit);
            signal s : bit;
            comb begin s <= not s; end;
            comb begin y <= s; end;
            end;
        ";
        let ent = entity(src);
        let facts = EntityFacts::new(&ent);
        assert_eq!(facts.comb_cycle(&ent), vec![0]);
    }

    #[test]
    fn infer_width_from_decls() {
        let src = "
            entity e is
              port(a : in bits(4); b : in bits(4); y : out bits(8));
            comb begin y <= a & b; end;
            end;
        ";
        let ent = entity(src);
        let decls = decl_widths(&ent);
        let Stmt::Assign { value, .. } = &ent.processes[0].body[0] else {
            panic!("expected assign");
        };
        assert_eq!(infer_width(value, &decls), Some(8));
    }
}
