//! CLI contract tests for the `musa` binary: argument parsing, exit
//! codes, the shape of `list`/`bench` output, and the golden-file
//! pins proving the campaign redesign preserved stdout byte-for-byte
//! and keeps the `--json` schema stable.

use std::process::{Command, Output};

fn musa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_musa"))
        .args(args)
        .output()
        .expect("musa binary runs")
}

fn golden(name: &str) -> String {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

fn stdout_of(args: &[&str]) -> String {
    let out = musa(args);
    assert_eq!(out.status.code(), Some(0), "{args:?}: {:?}", out);
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn no_subcommand_exits_2_with_usage() {
    let out = musa(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: musa"), "stderr: {stderr}");
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = musa(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: musa"));
}

#[test]
fn list_prints_every_bundled_benchmark() {
    let out = musa(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let names: Vec<&str> = stdout.lines().collect();
    assert!(!names.is_empty(), "list output must be non-empty");
    for expected in ["b01", "b03", "c432", "c499"] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
}

#[test]
fn bench_subcommand_reports_stats() {
    let out = musa(&["bench", "b01"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("b01:"), "stdout: {stdout}");
    assert!(stdout.contains("mutant population"), "stdout: {stdout}");
}

#[test]
fn sample_subcommand_reports_experiment_outcome() {
    let out = musa(&["sample", "c17", "0.5", "--jobs", "2", "--seed", "9"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("c17:"), "stdout: {stdout}");
    assert!(stdout.contains("2 jobs"), "stdout: {stdout}");
    assert!(stdout.contains("MS "), "stdout: {stdout}");
    assert!(stdout.contains("NLFCE "), "stdout: {stdout}");
}

#[test]
fn sample_outcome_is_identical_across_job_counts() {
    let serial = musa(&["sample", "c17", "0.5", "--jobs", "1", "--seed", "7"]);
    let parallel = musa(&["sample", "c17", "0.5", "--jobs", "4", "--seed", "7"]);
    assert_eq!(serial.status.code(), Some(0));
    assert_eq!(parallel.status.code(), Some(0));
    // Everything after the header line (which names the job count) must
    // be byte-identical: the parallel engine guarantees bit-equal
    // outcomes for every job count.
    let tail = |out: &Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial_tail = tail(&serial);
    assert!(!serial_tail.is_empty());
    assert_eq!(serial_tail, tail(&parallel));
}

#[test]
fn sample_outcome_is_identical_across_engines() {
    let scalar = musa(&["sample", "c17", "0.5", "--seed", "7", "--engine", "scalar"]);
    let lanes = musa(&["sample", "c17", "0.5", "--seed", "7", "--engine", "lanes"]);
    assert_eq!(scalar.status.code(), Some(0));
    assert_eq!(lanes.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&lanes.stdout).contains("lanes engine"),
        "header names the engine"
    );
    // Everything after the header line (which names the engine) must be
    // byte-identical: the lane engine guarantees bit-equal outcomes.
    let tail = |out: &Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n")
    };
    let scalar_tail = tail(&scalar);
    assert!(!scalar_tail.is_empty());
    assert_eq!(scalar_tail, tail(&lanes));
}

// ---------------------------------------------------------------------
// Golden pins: the campaign redesign preserved the CLI byte-for-byte.
// The golden files were captured from the pre-redesign binaries.
// ---------------------------------------------------------------------

#[test]
fn sample_stdout_is_byte_identical_to_pre_campaign_golden() {
    assert_eq!(
        stdout_of(&["sample", "c17", "0.5", "--jobs", "2", "--seed", "7"]),
        golden("sample_c17_text.txt"),
        "musa sample c17 drifted from the pre-redesign stdout"
    );
    assert_eq!(
        stdout_of(&["sample", "b01", "0.3", "--jobs", "2", "--seed", "7", "--engine", "lanes"]),
        golden("sample_b01_lanes_text.txt"),
        "musa sample b01 --engine lanes drifted from the pre-redesign stdout"
    );
}

#[test]
fn list_stdout_is_byte_identical_to_pre_campaign_golden() {
    assert_eq!(stdout_of(&["list"]), golden("list.txt"));
}

/// Pins the `musa.campaign.v1` JSON schema: every key, the field
/// order, the float formatting. `wall_ms` (the one nondeterministic
/// value) is normalized to `0` so the golden stays valid JSON.
#[test]
fn sample_json_matches_the_golden_schema() {
    let normalize_wall = |text: &str| -> String {
        text.lines()
            .map(|line| {
                if line.contains("\"wall_ms\":") {
                    "    \"wall_ms\": 0".to_string()
                } else {
                    line.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
            + "\n"
    };
    let actual = stdout_of(&["sample", "c17", "0.5", "--seed", "7", "--jobs", "2", "--json"]);
    assert_eq!(normalize_wall(&actual), golden("sample_c17.json"));
}

#[test]
fn sample_json_is_identical_across_engines_and_jobs() {
    let normalize = |text: String| -> String {
        text.lines()
            .filter(|l| {
                !l.contains("\"wall_ms\":")
                    && !l.contains("\"engine\":")
                    && !l.contains("\"jobs\":")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let base = normalize(stdout_of(&[
        "sample", "b01", "0.3", "--seed", "7", "--jobs", "1", "--engine", "scalar", "--json",
    ]));
    assert!(base.contains("\"schema\": \"musa.campaign.v1\""));
    for combo in [["2", "scalar"], ["1", "lanes"], ["2", "lanes"]] {
        let other = normalize(stdout_of(&[
            "sample", "b01", "0.3", "--seed", "7", "--jobs", combo[0], "--engine", combo[1],
            "--json",
        ]));
        assert_eq!(base, other, "jobs={} engine={}", combo[0], combo[1]);
    }
}

#[test]
fn sample_json_is_identical_across_fault_reduce_settings() {
    // Dominance reduction is a lane-occupancy knob, not a numbers knob:
    // apart from the fields that *report* the knob and the occupancy,
    // the reports must match byte for byte.
    let normalize = |text: String| -> String {
        text.lines()
            .filter(|l| {
                !l.contains("\"wall_ms\":")
                    && !l.contains("\"fault_reduce\":")
                    && !l.contains("\"faults_simulated\":")
                    && !l.contains("\"faults_total\"")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let on = stdout_of(&[
        "sample", "b01", "0.3", "--seed", "7", "--fault-reduce", "on", "--json",
    ]);
    assert!(on.contains("\"fault_reduce\": \"on\""));
    assert!(on.contains("\"faults_simulated\": "));
    let off = stdout_of(&[
        "sample", "b01", "0.3", "--seed", "7", "--fault-reduce", "off", "--json",
    ]);
    assert!(off.contains("\"fault_reduce\": \"off\""));
    assert_eq!(normalize(on), normalize(off));
}

#[test]
fn sample_rejects_bad_fault_reduce_value() {
    let out = musa(&["sample", "c17", "--fault-reduce", "sometimes"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("on|off"));
}

#[test]
fn sample_rejects_conflicting_presets() {
    let out = musa(&["sample", "c17", "--paper", "--fast"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("conflicting presets"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn sample_rejects_unknown_engine() {
    let out = musa(&["sample", "c17", "--engine", "turbo"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
}

#[test]
fn sample_without_benchmark_exits_1_with_usage() {
    let out = musa(&["sample"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected <name>"));
}

#[test]
fn sample_rejects_bad_fraction() {
    let out = musa(&["sample", "c17", "1.5"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("fraction"));
}

#[test]
fn bench_with_unknown_name_exits_1() {
    let out = musa(&["bench", "zz99"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
}

// ---------------------------------------------------------------------
// `musa bench` trajectory mode and `musa help`
// ---------------------------------------------------------------------

#[test]
fn help_subcommand_lists_every_command_including_bench_trajectory() {
    let stdout = stdout_of(&["help"]);
    for fragment in [
        "usage: musa", "info", "synth", "mutants", "faultsim", "scoap", "atpg",
        "bench", "sample", "lint", "list", "help",
        // ...and the trajectory flags of the new subcommand.
        "--quick", "--baseline", "--filter", "--write",
        // ...and the analysis knobs.
        "--screen static|off", "musa.lint.v1",
        // ...and the store/serving layer.
        "campaign", "serve", "client", "--workers", "--store", "--addr",
        "musa.request.v1", "--once",
    ] {
        assert!(stdout.contains(fragment), "help lacks {fragment}: {stdout}");
    }
}

// ---------------------------------------------------------------------
// `musa campaign` / `serve` / `client` / `__worker` argument contract
// ---------------------------------------------------------------------

#[test]
fn campaign_without_request_exits_2_with_usage() {
    let out = musa(&["campaign"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: musa campaign"));
}

#[test]
fn campaign_rejects_bad_flags_and_missing_files_with_exit_2() {
    let out = musa(&["campaign", "req.json", "--workers", "x"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers expects"));

    let out = musa(&["campaign", "/nonexistent/req.json"]);
    assert_eq!(out.status.code(), Some(2), "unreadable request is a pre-computation decision");
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/req.json"));

    let out = musa(&["campaign", "req.json", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument `--bogus`"));
}

#[test]
fn campaign_rejects_malformed_requests_with_exit_2() {
    let dir = std::env::temp_dir().join(format!("musa-cli-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\": \"musa.request.v2\"}").unwrap();
    let out = musa(&["campaign", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("schema"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn campaign_rejects_workers_on_non_sampling_tasks_with_exit_2() {
    let dir = std::env::temp_dir().join(format!("musa-cli-workers-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let req = dir.join("lint.json");
    std::fs::write(
        &req,
        "{\"schema\": \"musa.request.v1\", \"task\": \"lint\", \"benches\": [\"c17\"]}",
    )
    .unwrap();
    let out = musa(&["campaign", req.to_str().unwrap(), "--workers", "2"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("sampling"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn serve_and_client_arg_errors_exit_2() {
    let out = musa(&["serve"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: musa serve"));

    let out = musa(&["serve", "--addr"]);
    assert_eq!(out.status.code(), Some(2));

    let out = musa(&["client", "req.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: musa client"));

    let out = musa(&["client", "--addr", "127.0.0.1:1"]);
    assert_eq!(out.status.code(), Some(2), "missing request document");
}

#[test]
fn worker_arg_errors_exit_2() {
    let out = musa(&["__worker"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--cells"));

    let out = musa(&["__worker", "--cells"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn sample_store_conflicts_with_tracing() {
    let out = musa(&["sample", "c17", "--store", "s", "--profile"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--store cannot be combined"));
}

#[test]
fn bench_rejects_unknown_filter_benchmark_with_exit_2() {
    let out = musa(&["bench", "--quick", "--filter", "zz99"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown benchmark `zz99`"), "stderr: {stderr}");
    assert!(stderr.contains("--filter"), "stderr: {stderr}");
}

#[test]
fn bench_rejects_missing_and_malformed_baseline_with_exit_2() {
    let out = musa(&["bench", "--quick", "--baseline", "/nonexistent/BENCH_0.json"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--baseline /nonexistent/BENCH_0.json:"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let dir = std::env::temp_dir().join(format!("musa-cli-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\": \"musa.campaign.v1\"}").unwrap();
    let out = musa(&["bench", "--quick", "--baseline", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("schema mismatch"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bench_rejects_unknown_trajectory_arguments_with_usage() {
    let out = musa(&["bench", "--quick", "extra-positional"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown argument `extra-positional`"), "stderr: {stderr}");
    assert!(stderr.contains("usage: musa bench"), "stderr: {stderr}");
}

/// Normalizes the `musa.bench.v1` timing and machine fields (the
/// golden was normalized identically at capture time); everything
/// else — structure, field order, invariants — must match exactly.
fn normalize_bench_json(text: &str) -> String {
    let keys = [
        "\"median_ns\":", "\"mad_ns\":", "\"min_ns\":", "\"wall_ms\":",
        "\"cpus\":", "\"git\":", "\"debug\":",
    ];
    text.lines()
        .map(|line| match keys.iter().find(|k| line.contains(*k)) {
            Some(key) => {
                let indent: String =
                    line.chars().take_while(|c| c.is_whitespace()).collect();
                let comma = if line.trim_end().ends_with(',') { "," } else { "" };
                format!("{indent}{key} 0{comma}")
            }
            None => line.to_string(),
        })
        .collect::<Vec<_>>()
        .join("\n")
        + "\n"
}

#[test]
fn bench_json_matches_the_golden_schema() {
    let actual = stdout_of(&["bench", "--quick", "--json", "--filter", "c17", "--seed", "7"]);
    assert_eq!(
        normalize_bench_json(&actual),
        golden("bench_c17_quick.json"),
        "musa.bench.v1 drifted from the golden"
    );
}

#[test]
fn bench_baseline_round_trip_gates_on_invariants() {
    let dir = std::env::temp_dir().join(format!("musa-cli-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("BENCH_1.json");

    // Capture a quick c17 report and use it as its own baseline: an
    // unchanged tree must exit 0.
    let report = stdout_of(&["bench", "--quick", "--json", "--filter", "c17", "--seed", "7"]);
    std::fs::write(&baseline, &report).unwrap();
    let clean = musa(&[
        "bench", "--quick", "--filter", "c17", "--seed", "7",
        "--baseline", baseline.to_str().unwrap(),
    ]);
    assert_eq!(clean.status.code(), Some(0), "{:?}", clean);
    assert!(
        String::from_utf8_lossy(&clean.stderr).contains("baseline check"),
        "stderr: {}",
        String::from_utf8_lossy(&clean.stderr)
    );

    // A synthetically regressed baseline (tampered invariant) must
    // exit 1 and name the drifted field.
    let population = report
        .lines()
        .find(|l| l.contains("\"population\":"))
        .expect("report has a population invariant")
        .trim()
        .trim_end_matches(',')
        .to_string();
    let tampered_value = population.replace(char::is_numeric, "") + "1";
    let tampered = report.replace(&population, &tampered_value);
    assert_ne!(report, tampered, "tampering must change the document");
    std::fs::write(&baseline, &tampered).unwrap();
    let regressed = musa(&[
        "bench", "--quick", "--filter", "c17", "--seed", "7",
        "--baseline", baseline.to_str().unwrap(),
    ]);
    assert_eq!(regressed.status.code(), Some(1), "{:?}", regressed);
    let stderr = String::from_utf8_lossy(&regressed.stderr);
    assert!(stderr.contains("regression:"), "stderr: {stderr}");
    assert!(stderr.contains("invariant `population` changed"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// `musa lint` contract: exit 0 clean, 1 findings, 2 usage — and the
// `musa.lint.v1` JSON pinned by goldens.
// ---------------------------------------------------------------------

const DIRTY_FIXTURE: &str = "tests/fixtures/lint_dirty.mhdl";

#[test]
fn lint_without_target_exits_2_with_usage() {
    let out = musa(&["lint"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: musa lint"));
    // `--all` plus a name is equally a usage error.
    let both = musa(&["lint", "--all", "c17"]);
    assert_eq!(both.status.code(), Some(2));
}

#[test]
fn lint_unknown_bench_exits_2_before_analysis() {
    let out = musa(&["lint", "zz99"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown benchmark `zz99`"), "stderr: {stderr}");
    assert!(out.stdout.is_empty(), "no analysis output before the error");
}

#[test]
fn lint_clean_bench_exits_0_with_clean_line() {
    let out = musa(&["lint", "c17"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    assert_eq!(String::from_utf8_lossy(&out.stdout), "c17.mhdl: clean\n");
}

#[test]
fn lint_all_bundled_benchmarks_are_clean() {
    let out = musa(&["lint", "--all"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 11, "one line per bundled benchmark: {stdout}");
    for line in &lines {
        assert!(line.ends_with(": clean"), "{line}");
    }
}

#[test]
fn lint_dirty_fixture_exits_1_with_file_line_findings() {
    let out = musa(&["lint", DIRTY_FIXTURE]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Every finding is a compiler-style `file:line:col: rule: message`
    // line anchored at the fixture path.
    assert!(!stdout.is_empty());
    for line in stdout.lines() {
        assert!(line.starts_with(&format!("{DIRTY_FIXTURE}:")), "{line}");
    }
    for fragment in [
        ":3:8: unread-signal: ",
        ":7:6: constant-condition: ",
        ":8:5: dead-statement: ",
    ] {
        assert!(stdout.contains(fragment), "missing {fragment}: {stdout}");
    }
}

#[test]
fn lint_json_matches_the_goldens() {
    let dirty = musa(&["lint", DIRTY_FIXTURE, "--json"]);
    assert_eq!(dirty.status.code(), Some(1));
    assert_eq!(
        String::from_utf8_lossy(&dirty.stdout),
        golden("lint_dirty.json"),
        "musa.lint.v1 drifted from the dirty golden"
    );
    assert_eq!(
        stdout_of(&["lint", "c17", "--json"]),
        golden("lint_c17.json"),
        "musa.lint.v1 drifted from the clean golden"
    );
}

#[test]
fn lint_missing_file_exits_2_and_broken_file_exits_1() {
    let out = musa(&["lint", "/nonexistent/x.mhdl"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("/nonexistent/x.mhdl"));

    let dir = std::env::temp_dir().join(format!("musa-cli-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.mhdl");
    std::fs::write(&bad, "entity nope").unwrap();
    let out = musa(&["lint", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "parse errors are failures, not usage");
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sample_json_is_identical_across_screen_settings() {
    // The static pre-screen is a work-avoidance knob, not a numbers
    // knob: apart from the fields that *report* the knob and the
    // screened count, the reports must match byte for byte.
    let normalize = |text: String| -> String {
        text.lines()
            .filter(|l| {
                !l.contains("\"wall_ms\":")
                    && !l.contains("\"screen\":")
                    && !l.contains("\"screened\":")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let on = stdout_of(&[
        "sample", "b01", "0.3", "--seed", "7", "--screen", "static", "--json",
    ]);
    assert!(on.contains("\"screen\": \"static\""));
    let off = stdout_of(&[
        "sample", "b01", "0.3", "--seed", "7", "--screen", "off", "--json",
    ]);
    assert!(off.contains("\"screen\": \"off\""));
    assert!(off.contains("\"screened\": 0"));
    assert_eq!(normalize(on), normalize(off));
}

#[test]
fn sample_rejects_bad_screen_value() {
    let out = musa(&["sample", "c17", "--screen", "sometimes"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("static|off"));
}

#[test]
fn missing_file_reports_error_not_panic() {
    let out = musa(&["faultsim", "/nonexistent/x.bench"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
}

#[test]
fn info_requires_file_and_entity() {
    let out = musa(&["info", "only-one-arg"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected <file.mhdl> <entity>"));
}
