//! CLI contract tests for the `musa` binary: argument parsing, exit
//! codes and the shape of `list`/`bench` output.

use std::process::{Command, Output};

fn musa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_musa"))
        .args(args)
        .output()
        .expect("musa binary runs")
}

#[test]
fn no_subcommand_exits_2_with_usage() {
    let out = musa(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: musa"), "stderr: {stderr}");
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = musa(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: musa"));
}

#[test]
fn list_prints_every_bundled_benchmark() {
    let out = musa(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let names: Vec<&str> = stdout.lines().collect();
    assert!(!names.is_empty(), "list output must be non-empty");
    for expected in ["b01", "b03", "c432", "c499"] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
}

#[test]
fn bench_subcommand_reports_stats() {
    let out = musa(&["bench", "b01"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("b01:"), "stdout: {stdout}");
    assert!(stdout.contains("mutant population"), "stdout: {stdout}");
}

#[test]
fn sample_subcommand_reports_experiment_outcome() {
    let out = musa(&["sample", "c17", "0.5", "--jobs", "2", "--seed", "9"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("c17:"), "stdout: {stdout}");
    assert!(stdout.contains("2 jobs"), "stdout: {stdout}");
    assert!(stdout.contains("MS "), "stdout: {stdout}");
    assert!(stdout.contains("NLFCE "), "stdout: {stdout}");
}

#[test]
fn sample_outcome_is_identical_across_job_counts() {
    let serial = musa(&["sample", "c17", "0.5", "--jobs", "1", "--seed", "7"]);
    let parallel = musa(&["sample", "c17", "0.5", "--jobs", "4", "--seed", "7"]);
    assert_eq!(serial.status.code(), Some(0));
    assert_eq!(parallel.status.code(), Some(0));
    // Everything after the header line (which names the job count) must
    // be byte-identical: the parallel engine guarantees bit-equal
    // outcomes for every job count.
    let tail = |out: &Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial_tail = tail(&serial);
    assert!(!serial_tail.is_empty());
    assert_eq!(serial_tail, tail(&parallel));
}

#[test]
fn sample_outcome_is_identical_across_engines() {
    let scalar = musa(&["sample", "c17", "0.5", "--seed", "7", "--engine", "scalar"]);
    let lanes = musa(&["sample", "c17", "0.5", "--seed", "7", "--engine", "lanes"]);
    assert_eq!(scalar.status.code(), Some(0));
    assert_eq!(lanes.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&lanes.stdout).contains("lanes engine"),
        "header names the engine"
    );
    // Everything after the header line (which names the engine) must be
    // byte-identical: the lane engine guarantees bit-equal outcomes.
    let tail = |out: &Output| -> String {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .skip(1)
            .collect::<Vec<_>>()
            .join("\n")
    };
    let scalar_tail = tail(&scalar);
    assert!(!scalar_tail.is_empty());
    assert_eq!(scalar_tail, tail(&lanes));
}

#[test]
fn sample_rejects_unknown_engine() {
    let out = musa(&["sample", "c17", "--engine", "turbo"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));
}

#[test]
fn sample_without_benchmark_exits_1_with_usage() {
    let out = musa(&["sample"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected <name>"));
}

#[test]
fn sample_rejects_bad_fraction() {
    let out = musa(&["sample", "c17", "1.5"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("fraction"));
}

#[test]
fn bench_with_unknown_name_exits_1() {
    let out = musa(&["bench", "zz99"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
}

#[test]
fn missing_file_reports_error_not_panic() {
    let out = musa(&["faultsim", "/nonexistent/x.bench"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
}

#[test]
fn info_requires_file_and_entity() {
    let out = musa(&["info", "only-one-arg"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected <file.mhdl> <entity>"));
}
