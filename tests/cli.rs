//! CLI contract tests for the `musa` binary: argument parsing, exit
//! codes and the shape of `list`/`bench` output.

use std::process::{Command, Output};

fn musa(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_musa"))
        .args(args)
        .output()
        .expect("musa binary runs")
}

#[test]
fn no_subcommand_exits_2_with_usage() {
    let out = musa(&[]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage: musa"), "stderr: {stderr}");
}

#[test]
fn unknown_subcommand_exits_2() {
    let out = musa(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: musa"));
}

#[test]
fn list_prints_every_bundled_benchmark() {
    let out = musa(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let names: Vec<&str> = stdout.lines().collect();
    assert!(!names.is_empty(), "list output must be non-empty");
    for expected in ["b01", "b03", "c432", "c499"] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
}

#[test]
fn bench_subcommand_reports_stats() {
    let out = musa(&["bench", "b01"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("b01:"), "stdout: {stdout}");
    assert!(stdout.contains("mutant population"), "stdout: {stdout}");
}

#[test]
fn bench_with_unknown_name_exits_1() {
    let out = musa(&["bench", "zz99"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
}

#[test]
fn missing_file_reports_error_not_panic() {
    let out = musa(&["faultsim", "/nonexistent/x.bench"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
}

#[test]
fn info_requires_file_and_entity() {
    let out = musa(&["info", "only-one-arg"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected <file.mhdl> <entity>"));
}
