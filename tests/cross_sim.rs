//! Cross-layer consistency: behavioral simulation, synthesized gates
//! and `.bench` round-trips must all agree, for every bundled benchmark.

use musa::circuits::Benchmark;
use musa::hdl::{Bits, Simulator};
use musa::netlist::{good_outputs, parse_bench, write_bench};
use musa::prng::{Prng, SplitMix64};
use musa::synth::{flatten_sequence, unflatten_outputs};

fn random_sequence_for(
    circuit: &musa::circuits::Circuit,
    cycles: usize,
    seed: u64,
) -> Vec<Vec<Bits>> {
    let info = circuit.info();
    let mut rng = SplitMix64::new(seed);
    (0..cycles)
        .map(|_| {
            info.data_inputs
                .iter()
                .map(|&p| {
                    let w = info.symbol(p).width;
                    Bits::new(w, rng.bits(w))
                })
                .collect()
        })
        .collect()
}

#[test]
fn behavioral_equals_gates_for_every_benchmark() {
    for bench in Benchmark::all() {
        let circuit = bench.load().expect("benchmark loads");
        let sequence = random_sequence_for(&circuit, 120, 0xC0DE ^ bench.name().len() as u64);
        let mut behav = Simulator::new(&circuit.checked, &circuit.name).unwrap();
        let expected = behav.run(&sequence);
        let patterns = flatten_sequence(circuit.info(), &sequence);
        let gate_outs = good_outputs(&circuit.netlist, &patterns);
        for (t, bits) in gate_outs.iter().enumerate() {
            assert_eq!(
                unflatten_outputs(circuit.info(), bits),
                expected[t],
                "{bench}: cycle {t} diverges"
            );
        }
    }
}

#[test]
fn bench_roundtrip_preserves_behaviour() {
    for bench in Benchmark::all() {
        let circuit = bench.load().expect("benchmark loads");
        let text = write_bench(&circuit.netlist);
        let reparsed = parse_bench(&text, bench.name()).expect("roundtrip parses");
        assert_eq!(reparsed.gate_count(), circuit.netlist.gate_count());
        assert_eq!(reparsed.dff_count(), circuit.netlist.dff_count());

        // Same outputs on a shared stimulus.
        let sequence = random_sequence_for(&circuit, 60, 0xBEC4);
        let patterns = flatten_sequence(circuit.info(), &sequence);
        let original = good_outputs(&circuit.netlist, &patterns);
        let roundtripped = good_outputs(&reparsed, &patterns);
        assert_eq!(original, roundtripped, "{bench}: roundtrip diverges");
    }
}

#[test]
fn sweep_is_idempotent_on_benchmarks() {
    for bench in Benchmark::all() {
        let circuit = bench.load().expect("benchmark loads");
        let swept = circuit.netlist.sweep_dead().freeze().expect("sweep freezes");
        assert_eq!(
            swept.gate_count(),
            circuit.netlist.gate_count(),
            "{bench}: synthesis output must already be swept"
        );
    }
}
