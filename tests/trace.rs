//! Observability tests: trace counters mirror the pre-existing stats,
//! tracing-off runs stay bit-identical, the `musa.trace.v1` document
//! structure is pinned by a golden file, and the CLI flags
//! (`--trace`, `--trace-format`, `--profile`, `--history`) behave.

use musa::circuits::Benchmark;
use musa::core::{
    trace_json_with, validate_trace_document, Campaign, ExperimentConfig, ReportData, Task,
    DEFAULT_SEED,
};
use musa::mutation::{execute_mutants_lanes_opts, generate_mutants, GenerateOptions, LaneOptions};
use musa::testgen::random_sequence;
use musa::trace::{TraceData, Tracer};
use std::process::{Command, Output};

fn musa_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_musa"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("musa binary runs")
}

fn counter(data: &TraceData, name: &str) -> u64 {
    data.counters
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |&(_, v)| v)
}

/// A single-repetition, single-thread fast config: with one repetition
/// the aggregate means are the raw per-run numbers, so the trace
/// counters must equal the reported outcome fields exactly.
fn one_rep_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::fast(DEFAULT_SEED);
    config.repetitions = 1;
    config.jobs = 1;
    config
}

fn traced_sampling(bench: &str) -> (musa::core::Report, TraceData) {
    let report = Campaign::named(bench)
        .config(one_rep_config())
        .trace(true)
        .task(Task::Sampling { fraction: 0.10 })
        .run()
        .unwrap_or_else(|e| panic!("{bench}: {e}"));
    let data = report.trace.clone().expect("tracing was enabled");
    (report, data)
}

// ---------------------------------------------------------------------
// Counters mirror the existing stats
// ---------------------------------------------------------------------

#[test]
fn lane_counters_equal_lane_stats() {
    let circuit = Benchmark::B01.load().unwrap();
    let mutants = generate_mutants(&circuit.checked, &circuit.name, &GenerateOptions::default());
    let sequence = random_sequence(circuit.info(), 24, 7);
    let tracer = Tracer::new();
    let (_kills, stats) = {
        let _install = tracer.install();
        execute_mutants_lanes_opts(
            &circuit.checked,
            &circuit.name,
            &mutants,
            &sequence,
            &LaneOptions::default(),
        )
        .unwrap()
    };
    let data = tracer.finish().expect("enabled tracer yields data");
    assert!(stats.passes > 0);
    assert_eq!(counter(&data, "lane_passes"), stats.passes as u64);
    assert_eq!(counter(&data, "lane_steps"), stats.steps as u64);
}

#[test]
fn sampling_counters_equal_outcome_fields() {
    for bench in ["b01", "c17", "c432"] {
        let (report, data) = traced_sampling(bench);
        let ReportData::Sampling(rows) = &report.data else {
            panic!("sampling task yields sampling rows");
        };
        let outcome = &rows[0].outcome;
        assert_eq!(
            counter(&data, "faults_simulated"),
            outcome.fault_sim.faults_simulated as u64,
            "{bench}: faults_simulated"
        );
        assert_eq!(
            counter(&data, "faults_total"),
            outcome.fault_sim.faults_total as u64,
            "{bench}: faults_total"
        );
        assert_eq!(
            counter(&data, "screened"),
            outcome.screened as u64,
            "{bench}: screened"
        );
    }
}

// ---------------------------------------------------------------------
// Bit-identity with tracing off
// ---------------------------------------------------------------------

#[test]
fn outputs_are_identical_with_tracing_on_and_off() {
    let run = |trace: bool| {
        Campaign::named("c17")
            .config(one_rep_config())
            .trace(trace)
            .task(Task::Sampling { fraction: 0.10 })
            .run()
            .unwrap()
    };
    let off = run(false);
    let on = run(true);
    assert!(off.trace.is_none(), "trace-off runs carry no trace data");
    assert!(on.trace.is_some());
    assert_eq!(off.render_text(), on.render_text());
    // wall_ms differs between runs; everything else must match.
    let strip_wall = |text: String| -> String {
        text.lines()
            .filter(|line| !line.contains("\"wall_ms\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip_wall(off.to_json()), strip_wall(on.to_json()));
}

// ---------------------------------------------------------------------
// Golden document structure
// ---------------------------------------------------------------------

/// Pins the `musa.trace.v1` structure — span names, context paths,
/// sequence numbers, parent links, and counters — for a fixed c17 run
/// (1 repetition, 1 job, default seed). All clock fields are
/// normalized to 0 so the document is byte-stable across machines.
/// Re-bless with `MUSA_BLESS=1 cargo test --test trace`.
#[test]
fn trace_document_structure_matches_golden() {
    let (report, _) = traced_sampling("c17");
    let actual = format!("{}\n", trace_json_with(&report, true).unwrap());
    validate_trace_document(&actual).unwrap();
    let path = format!(
        "{}/tests/golden/trace_c17.json",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var("MUSA_BLESS").is_ok() {
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(actual, expected, "musa.trace.v1 drifted from the golden");
}

#[test]
fn trace_structure_is_identical_for_every_job_count() {
    let traced = |jobs: usize| {
        let mut config = one_rep_config();
        config.jobs = jobs;
        let report = Campaign::named("c17")
            .config(config)
            .trace(true)
            .task(Task::Sampling { fraction: 0.10 })
            .run()
            .unwrap();
        // meta.jobs records the knob itself; everything else —
        // spans, paths, seqs, counters — must not move.
        trace_json_with(&report, true)
            .unwrap()
            .lines()
            .filter(|line| !line.contains("\"jobs\""))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let serial = traced(1);
    assert_eq!(serial, traced(2), "jobs=2 changed the trace structure");
    assert_eq!(serial, traced(4), "jobs=4 changed the trace structure");
}

// ---------------------------------------------------------------------
// CLI surface
// ---------------------------------------------------------------------

#[test]
fn sample_trace_flag_writes_a_valid_document() {
    let dir = std::env::temp_dir().join(format!("musa-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json_path = dir.join("t.json");
    let out = musa_bin(&["sample", "b01", "--trace", json_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let text = std::fs::read_to_string(&json_path).unwrap();
    validate_trace_document(&text).unwrap();

    let chrome_path = dir.join("t.chrome.json");
    let out = musa_bin(&[
        "sample",
        "b01",
        "--trace",
        chrome_path.to_str().unwrap(),
        "--trace-format",
        "chrome",
    ]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let chrome = std::fs::read_to_string(&chrome_path).unwrap();
    assert!(chrome.contains("\"traceEvents\""), "{chrome}");
    assert!(chrome.contains("\"ph\": \"X\""), "{chrome}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sample_profile_prints_a_phase_table() {
    let out = musa_bin(&["sample", "c17", "--profile"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("phase"), "{stdout}");
    assert!(stdout.contains("campaign"), "{stdout}");
    assert!(stdout.contains("wall ms"), "{stdout}");
    assert!(stdout.contains("counter"), "{stdout}");
    // The lane-tape optimizer runs by default, so the pass pipeline
    // shows up both as a phase row and via its shrinkage counters.
    assert!(stdout.contains("lane_opt"), "{stdout}");
    assert!(stdout.contains("lane_opt_instrs_before"), "{stdout}");
    assert!(stdout.contains("lane_opt_instrs_after"), "{stdout}");
    // With --json the table moves to stderr so stdout stays parseable.
    let out = musa_bin(&["sample", "c17", "--profile", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("musa.campaign.v1"), "{stdout}");
    assert!(!stdout.contains("wall ms"), "{stdout}");
    assert!(stderr.contains("wall ms"), "{stderr}");
}

#[test]
fn non_campaign_profile_renders_via_the_main_level_tracer() {
    // Non-campaign subcommands don't parse --profile themselves; main
    // strips the flag and hosts the tracer around dispatch.
    let out = musa_bin(&["list", "--profile"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wall ms"), "{stdout}");
}

#[test]
fn bench_history_renders_the_committed_reports() {
    let out = musa_bin(&["bench", "--history"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cell"), "{stdout}");
    assert!(stdout.contains("BENCH_1"), "{stdout}");
    assert!(stdout.contains("mutant_exec/"), "{stdout}");

    let out = musa_bin(&["bench", "--history", "--json"]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("musa.bench.history.v1"), "{stdout}");

    // Outside a directory with committed reports the command fails
    // cleanly.
    let dir = std::env::temp_dir().join(format!("musa-history-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_musa"))
        .args(["bench", "--history"])
        .current_dir(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn progress_lines_go_to_stderr_only() {
    let quiet = musa_bin(&["sample", "c17", "--seed", "5"]);
    let chatty = musa_bin(&["sample", "c17", "--seed", "5", "--progress"]);
    assert_eq!(quiet.status.code(), Some(0));
    assert_eq!(chatty.status.code(), Some(0));
    assert_eq!(quiet.stdout, chatty.stdout, "--progress must not touch stdout");
    let stderr = String::from_utf8_lossy(&chatty.stderr);
    assert!(stderr.contains("repetition"), "{stderr}");
    assert!(String::from_utf8_lossy(&quiet.stderr).is_empty());
}

/// CI's trace-smoke hook: when `MUSA_TRACE_VALIDATE` names a file, the
/// file must parse as `musa.trace.v1` through the `musa_core::json`
/// parser with every required key present. A no-op otherwise.
#[test]
fn trace_smoke_validates_env_file() {
    let Ok(path) = std::env::var("MUSA_TRACE_VALIDATE") else {
        return;
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    validate_trace_document(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
}
