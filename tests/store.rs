//! End-to-end contract tests for the campaign result store and the
//! serving layer, driven through the `musa` binary exactly as CI and
//! users drive it: `campaign` (store hits byte-identical to fresh
//! runs, corruption tolerated, worker sharding bit-identical) and the
//! `serve`/`client` pair (one TCP round trip matches the direct CLI).

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Command, Output, Stdio};

/// A fixed two-bench sampling request (the store keys on the resolved
/// plan, so `jobs` may vary freely without splitting the cache).
const REQUEST: &str = "{\"schema\": \"musa.request.v1\", \"task\": \"sampling\", \
\"params\": {\"fraction\": 0.1}, \"benches\": [\"b01\", \"c17\"], \
\"seed\": 7, \"preset\": \"fast\", \"jobs\": 1}";

/// The content address of [`REQUEST`]'s resolved plan. Pinned: the
/// key material (`musa.key.v1`) is a published contract, so a drift
/// here is a cache-invalidation event that must be deliberate.
const REQUEST_KEY: &str = "0f30c6305ab662510355d31054e8bd00";

fn musa(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_musa"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("musa binary runs")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("musa-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("req.json"), REQUEST).unwrap();
    dir
}

fn stdout_str(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr_str(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Zeroes the only legitimately nondeterministic report field.
fn norm_wall(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        if let Some(idx) = line.find("\"wall_ms\":") {
            let comma = if line.trim_end().ends_with(',') { "," } else { "" };
            out.push_str(&line[..idx]);
            out.push_str("\"wall_ms\": 0");
            out.push_str(comma);
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

#[test]
fn store_miss_then_hit_is_byte_identical_and_key_is_pinned() {
    let dir = scratch("hit");
    let args = ["campaign", "req.json", "--store", ".s"];
    let miss = musa(&args, &dir);
    assert_eq!(miss.status.code(), Some(0), "{}", stderr_str(&miss));
    assert!(
        stderr_str(&miss).contains(&format!("store: miss {REQUEST_KEY}")),
        "stderr: {}",
        stderr_str(&miss)
    );

    let hit = musa(&args, &dir);
    assert_eq!(hit.status.code(), Some(0), "{}", stderr_str(&hit));
    assert!(
        stderr_str(&hit).contains(&format!("store: hit {REQUEST_KEY}")),
        "stderr: {}",
        stderr_str(&hit)
    );
    assert_eq!(
        stdout_str(&miss),
        stdout_str(&hit),
        "a hit must replay the fresh text byte-for-byte"
    );

    // JSON mode too — same cache entry, wall normalized.
    let miss_json = stdout_str(&musa(&["campaign", "req.json", "--json"], &dir));
    let hit_json = musa(&["campaign", "req.json", "--store", ".s", "--json"], &dir);
    assert!(stderr_str(&hit_json).contains("store: hit"));
    assert_eq!(norm_wall(&miss_json), norm_wall(&stdout_str(&hit_json)));

    // The blob on disk is addressed by the pinned key.
    assert!(dir.join(".s").join(format!("{REQUEST_KEY}.json")).is_file());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_blob_recomputes_and_heals() {
    let dir = scratch("corrupt");
    let args = ["campaign", "req.json", "--store", ".s"];
    let first = musa(&args, &dir);
    assert_eq!(first.status.code(), Some(0), "{}", stderr_str(&first));

    let blob = dir.join(".s").join(format!("{REQUEST_KEY}.json"));
    std::fs::write(&blob, "{ truncated garbage").unwrap();

    let recomputed = musa(&args, &dir);
    assert_eq!(recomputed.status.code(), Some(0), "{}", stderr_str(&recomputed));
    assert!(
        stderr_str(&recomputed).contains("store: miss"),
        "a corrupt blob must degrade to a miss, not an error: {}",
        stderr_str(&recomputed)
    );
    assert_eq!(stdout_str(&first), stdout_str(&recomputed));

    // ...and the recompute healed the blob: next run hits again.
    let healed = musa(&args, &dir);
    assert!(stderr_str(&healed).contains("store: hit"), "{}", stderr_str(&healed));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_counts_are_bit_identical_to_in_process() {
    let dir = scratch("workers");
    let direct = musa(&["campaign", "req.json", "--json"], &dir);
    assert_eq!(direct.status.code(), Some(0), "{}", stderr_str(&direct));
    let baseline = norm_wall(&stdout_str(&direct));
    for workers in ["1", "2", "4"] {
        let sharded = musa(&["campaign", "req.json", "--workers", workers, "--json"], &dir);
        assert_eq!(sharded.status.code(), Some(0), "{}", stderr_str(&sharded));
        assert_eq!(
            baseline,
            norm_wall(&stdout_str(&sharded)),
            "--workers {workers} drifted from the in-process report"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sample_store_flag_hits_on_the_second_run() {
    let dir = scratch("sample");
    let args = ["sample", "b01", "--store", ".s"];
    let miss = musa(&args, &dir);
    assert_eq!(miss.status.code(), Some(0), "{}", stderr_str(&miss));
    assert!(stderr_str(&miss).contains("store: miss"), "{}", stderr_str(&miss));
    let hit = musa(&args, &dir);
    assert!(stderr_str(&hit).contains("store: hit"), "{}", stderr_str(&hit));
    assert_eq!(stdout_str(&miss), stdout_str(&hit));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_once_round_trip_matches_the_direct_cli() {
    let dir = scratch("serve");
    let mut server = Command::new(env!("CARGO_BIN_EXE_musa"))
        .args(["serve", "--addr", "127.0.0.1:0", "--store", ".srv", "--once"])
        .current_dir(&dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve spawns");

    // The server announces the resolved port-0 address first.
    let mut announce = String::new();
    BufReader::new(server.stdout.take().expect("piped stdout"))
        .read_line(&mut announce)
        .expect("server announces its address");
    let addr = announce
        .trim()
        .strip_prefix("listening ")
        .unwrap_or_else(|| panic!("bad announcement: {announce:?}"))
        .to_string();

    let reply = musa(&["client", "--addr", &addr, "req.json"], &dir);
    assert_eq!(reply.status.code(), Some(0), "{}", stderr_str(&reply));
    assert!(stderr_str(&reply).contains("status: ok-miss"), "{}", stderr_str(&reply));
    let status = server.wait().expect("serve exits after --once");
    assert!(status.success(), "serve --once must exit 0: {status:?}");

    let direct = musa(&["campaign", "req.json", "--json"], &dir);
    assert_eq!(
        norm_wall(&stdout_str(&direct)),
        norm_wall(&stdout_str(&reply)),
        "the served report must match the direct CLI"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
