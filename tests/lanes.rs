//! Differential tests of the bit-parallel lane engine against the
//! scalar engine: `KillResult`s must be bit-identical on every bundled
//! circuit, for every lane count and job count.

use musa::circuits::Benchmark;
use musa::hdl::Bits;
use musa::mutation::{
    execute_mutants_engine, execute_mutants_jobs, execute_mutants_lanes_opts, generate_mutants,
    Engine, GenerateOptions, LaneOptions, LanePlan, Mutant, OptLevel, MAX_LANES,
};
use musa::prng::{Prng, SplitMix64};
use proptest::prelude::*;
use std::sync::OnceLock;

fn circuits() -> &'static Vec<(musa::circuits::Circuit, Vec<Mutant>)> {
    static CACHE: OnceLock<Vec<(musa::circuits::Circuit, Vec<Mutant>)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Benchmark::all()
            .into_iter()
            .map(|bench| {
                let circuit = bench.load().expect("benchmark loads");
                let population = generate_mutants(
                    &circuit.checked,
                    &circuit.name,
                    &GenerateOptions::default(),
                );
                assert!(!population.is_empty(), "{bench}: empty population");
                (circuit, population)
            })
            .collect()
    })
}

fn random_sequence_for(
    circuit: &musa::circuits::Circuit,
    cycles: usize,
    seed: u64,
) -> Vec<Vec<Bits>> {
    let info = circuit.info();
    let mut rng = SplitMix64::new(seed);
    (0..cycles)
        .map(|_| {
            info.data_inputs
                .iter()
                .map(|&p| {
                    let w = info.symbol(p).width;
                    Bits::new(w, rng.bits(w))
                })
                .collect()
        })
        .collect()
}

/// Every `stride`-th mutant: bounds the scalar baseline's cost on the
/// larger populations while touching every operator region of the walk.
fn subsample(population: &[Mutant], limit: usize) -> Vec<Mutant> {
    let stride = population.len().div_ceil(limit).max(1);
    population.iter().step_by(stride).cloned().collect()
}

#[test]
fn lane_engine_is_bit_identical_on_every_bundled_circuit() {
    for (circuit, population) in circuits() {
        let mutants = subsample(population, 48);
        let sequence = random_sequence_for(circuit, 16, 0x1A4E ^ circuit.name.len() as u64);
        let scalar =
            execute_mutants_jobs(&circuit.checked, &circuit.name, &mutants, &sequence, 1)
                .unwrap();
        for lanes_per_pass in [1, 2, 63] {
            for jobs in [1, 8] {
                let opts = LaneOptions { lanes_per_pass, jobs, ..LaneOptions::default() };
                let (lanes, _) = execute_mutants_lanes_opts(
                    &circuit.checked,
                    &circuit.name,
                    &mutants,
                    &sequence,
                    &opts,
                )
                .unwrap();
                assert_eq!(
                    lanes.first_kill, scalar.first_kill,
                    "{}: lanes={lanes_per_pass} jobs={jobs}",
                    circuit.name
                );
            }
        }
    }
}

#[test]
fn full_population_takes_ceil_n_over_63_passes_on_b01() {
    let (circuit, population) = &circuits()[1]; // b01 (all() is smallest-first)
    assert_eq!(circuit.name, "b01");
    let sequence = random_sequence_for(circuit, 8, 0xB01);
    let (kills, stats) = execute_mutants_lanes_opts(
        &circuit.checked,
        &circuit.name,
        population,
        &sequence,
        &LaneOptions::default(),
    )
    .unwrap();
    assert_eq!(kills.first_kill.len(), population.len());
    assert_eq!(
        stats.passes,
        population.len().div_ceil(MAX_LANES),
        "population {} must cost ⌈N/63⌉ passes, not N",
        population.len()
    );
}

#[test]
fn engine_dispatch_is_identical_through_the_public_entry_point() {
    let (circuit, population) = &circuits()[0]; // c17
    let sequence = random_sequence_for(circuit, 12, 0xC17);
    let scalar = execute_mutants_engine(
        &circuit.checked,
        &circuit.name,
        population,
        &sequence,
        2,
        Engine::Scalar,
    )
    .unwrap();
    let lanes = execute_mutants_engine(
        &circuit.checked,
        &circuit.name,
        population,
        &sequence,
        2,
        Engine::Lanes,
    )
    .unwrap();
    assert_eq!(scalar.first_kill, lanes.first_kill);
}

/// Per-circuit `(full, off)` plans over the FULL population, compiled
/// once — the property test below only varies the stimulus.
fn opt_plans() -> &'static Vec<(LanePlan<'static>, LanePlan<'static>)> {
    static CACHE: OnceLock<Vec<(LanePlan<'static>, LanePlan<'static>)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        circuits()
            .iter()
            .map(|(circuit, population)| {
                let plan = |opt| {
                    LanePlan::new(
                        &circuit.checked,
                        &circuit.name,
                        population,
                        &LaneOptions::default().with_opt(opt),
                    )
                    .expect("plan compiles")
                };
                (plan(OptLevel::Full), plan(OptLevel::Off))
            })
            .collect()
    })
}

proptest! {
    /// The optimizer is semantics-preserving on every bundled circuit's
    /// FULL mutant population: for random stimulus, the optimized
    /// pipeline reproduces the unoptimized pipeline's first-kill vector
    /// bit for bit (and the unoptimized side really ran untouched
    /// tapes).
    #[test]
    fn optimizer_preserves_kills_on_full_populations(
        seed in any::<u64>(),
        cycles in 2usize..12,
    ) {
        for ((circuit, population), (full, off)) in circuits().iter().zip(opt_plans()) {
            let sequence = random_sequence_for(circuit, cycles, seed);
            let (kills_full, stats_full) = full.first_kills(&sequence).unwrap();
            let (kills_off, stats_off) = off.first_kills(&sequence).unwrap();
            prop_assert_eq!(
                &kills_full.first_kill, &kills_off.first_kill,
                "{}: optimized and unoptimized kills diverged", circuit.name,
            );
            prop_assert_eq!(kills_full.first_kill.len(), population.len());
            prop_assert!(stats_full.instrs_after <= stats_full.instrs_before);
            prop_assert_eq!(stats_off.instrs_after, stats_off.instrs_before);
        }
    }
}

proptest! {
    /// For random circuits, mutant subsets and stimuli, the lane engine
    /// reproduces the scalar engine's first-kill vector bit for bit.
    #[test]
    fn lane_kill_results_match_scalar_for_random_sequences(
        seed in any::<u64>(),
        pick in 0usize..Benchmark::all().len(),
        cycles in 2usize..9,
    ) {
        let (circuit, population) = &circuits()[pick];
        let mut rng = SplitMix64::new(seed);
        let offset = (rng.next_u64() as usize) % population.len();
        let mutants: Vec<Mutant> = population
            .iter()
            .cycle()
            .skip(offset)
            .step_by((population.len() / 10).max(1))
            .take(10.min(population.len()))
            .cloned()
            .collect();
        let sequence = random_sequence_for(circuit, cycles, rng.next_u64());
        let scalar = execute_mutants_jobs(
            &circuit.checked, &circuit.name, &mutants, &sequence, 1,
        ).unwrap();
        let (lanes, stats) = execute_mutants_lanes_opts(
            &circuit.checked, &circuit.name, &mutants, &sequence,
            &LaneOptions::default(),
        ).unwrap();
        prop_assert_eq!(&lanes.first_kill, &scalar.first_kill, "{}", circuit.name);
        prop_assert_eq!(stats.passes, 1, "10 mutants fit one pass");
    }
}
