//! Workspace-level property-based tests (proptest): invariants that
//! must hold across the whole public API for arbitrary inputs.

use musa::hdl::{parse, Bits, CheckedDesign, Simulator};
use musa::metrics::{mad, median, RobustStats};
use musa::netlist::good_outputs;
use musa::prng::{Lfsr, Prng, SplitMix64, XorShift64Star};
use musa::synth::{flatten_inputs, synthesize, unflatten_outputs};
use proptest::prelude::*;

proptest! {
    /// Bits arithmetic is exactly u64 arithmetic modulo 2^width.
    #[test]
    fn bits_ops_match_reference(a in any::<u64>(), b in any::<u64>(), width in 1u32..=64) {
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let x = Bits::new(width, a);
        let y = Bits::new(width, b);
        prop_assert_eq!(x.add(y).raw(), a.wrapping_add(b) & mask);
        prop_assert_eq!(x.sub(y).raw(), a.wrapping_sub(b) & mask);
        prop_assert_eq!(x.mul(y).raw(), a.wrapping_mul(b) & mask);
        prop_assert_eq!(x.and(y).raw(), a & b & mask);
        prop_assert_eq!(x.or(y).raw(), (a | b) & mask);
        prop_assert_eq!(x.xor(y).raw(), (a ^ b) & mask);
        prop_assert_eq!(x.not().raw(), !a & mask);
        prop_assert_eq!(x.cmp_eq(y).as_bool(), (a & mask) == (b & mask));
        prop_assert_eq!(x.cmp_lt(y).as_bool(), (a & mask) < (b & mask));
    }

    /// Slice/concat are inverses.
    #[test]
    fn bits_concat_slice_roundtrip(a in any::<u64>(), wa in 1u32..=32, wb in 1u32..=32) {
        let hi = Bits::new(wa, a);
        let lo = Bits::new(wb, a.rotate_left(17));
        let joined = hi.concat(lo);
        prop_assert_eq!(joined.slice(wa + wb - 1, wb), hi);
        prop_assert_eq!(joined.slice(wb - 1, 0), lo);
    }

    /// PRNG bounded sampling is always in range, for every generator.
    #[test]
    fn prng_below_is_bounded(seed in any::<u64>(), bound in 1u64..=1_000_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = XorShift64Star::new(seed);
        for _ in 0..64 {
            prop_assert!(a.below(bound) < bound);
            prop_assert!(b.below(bound) < bound);
        }
    }

    /// LFSRs never reach the all-zero lock-up state.
    #[test]
    fn lfsr_never_locks(width in 2u32..=64, seed in 1u64..) {
        if let Ok(mut lfsr) = Lfsr::new(width, seed) {
            for _ in 0..256 {
                lfsr.step();
                prop_assert_ne!(lfsr.state(), 0);
            }
        }
    }

    /// The lexer never panics, whatever bytes arrive.
    #[test]
    fn parser_never_panics(input in ".{0,200}") {
        let _ = parse(&input);
    }

    /// The robust-stats helpers are order-free: every permutation of
    /// the samples yields the identical median, MAD and summary.
    #[test]
    fn robust_stats_are_permutation_invariant(
        raw in proptest::collection::vec(0u64..1_000_000u64, 1..50),
        seed in any::<u64>(),
    ) {
        let samples: Vec<f64> = raw.iter().map(|&v| v as f64 / 128.0).collect();
        let mut shuffled = samples.clone();
        let mut rng = SplitMix64::new(seed);
        for i in (1..shuffled.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            shuffled.swap(i, j);
        }
        prop_assert_eq!(median(&shuffled), median(&samples));
        prop_assert_eq!(mad(&shuffled), mad(&samples));
        prop_assert_eq!(RobustStats::of(&shuffled), RobustStats::of(&samples));
    }

    /// `median` matches the naive sort-based oracle for both parities:
    /// the middle order statistic (odd length), the mean of the two
    /// middle order statistics (even length) — and always lies within
    /// the sample range.
    #[test]
    fn median_matches_the_sort_oracle(
        raw in proptest::collection::vec(0u64..1_000_000u64, 1..60),
    ) {
        let samples: Vec<f64> = raw.iter().map(|&v| v as f64 / 64.0).collect();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        let oracle = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let m = median(&samples);
        prop_assert_eq!(m, oracle);
        prop_assert!(m >= sorted[0] && m <= sorted[n - 1]);
        prop_assert!(mad(&samples) >= 0.0);
        prop_assert_eq!(RobustStats::of(&samples).min, sorted[0]);
    }

    /// Synthesized combinational datapaths agree with the behavioral
    /// simulator on arbitrary inputs — the synthesis correctness
    /// contract, fuzzed over expressions built from random constants.
    #[test]
    fn synth_matches_behaviour_on_random_datapath(
        k1 in 0u64..256,
        k2 in 0u64..256,
        shift in 0u32..8,
        inputs in proptest::collection::vec((0u64..256, 0u64..256), 1..20),
    ) {
        let src = format!(
            "entity dp is
               port(a : in bits(8); b : in bits(8); y : out bits(8); f : out bit);
             comb
               var t : bits(8);
             begin
               t := (a + {k1}) xor (b * {k2});
               if t > a then
                 t := t - b;
               end if;
               y <= t srl {shift};
               f <= xorr(t) or (a = b);
             end;
             end;"
        );
        let checked = CheckedDesign::new(parse(&src).unwrap()).unwrap();
        let nl = synthesize(&checked, "dp").unwrap();
        let info = checked.entity_info("dp").unwrap();
        let mut sim = Simulator::new(&checked, "dp").unwrap();
        for (a, b) in inputs {
            let vector = vec![Bits::new(8, a), Bits::new(8, b)];
            let expected = sim.step(&vector);
            let pattern = flatten_inputs(info, &vector);
            let gate = good_outputs(&nl, &[pattern]);
            prop_assert_eq!(
                unflatten_outputs(info, &gate[0]),
                expected,
                "a={} b={}", a, b
            );
        }
    }
}
