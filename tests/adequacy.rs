//! Adequacy contracts: generated validation data must actually kill the
//! mutants it claims, and PODEM tests must actually detect their faults.

use musa::circuits::Benchmark;
use musa::mutation::{execute_mutants, generate_mutants, GenerateOptions};
use musa::netlist::{collapsed_faults, fault_simulate};
use musa::testgen::{atpg_all, mutation_guided_tests, MgConfig, PodemResult};

#[test]
fn validation_data_kill_claims_are_reproducible() {
    for bench in [Benchmark::C17, Benchmark::B01, Benchmark::B06] {
        let circuit = bench.load().expect("benchmark loads");
        let mutants = generate_mutants(
            &circuit.checked,
            &circuit.name,
            &GenerateOptions::default(),
        );
        let generated = mutation_guided_tests(
            &circuit.checked,
            &circuit.name,
            &mutants,
            &MgConfig::fast(0xAD),
        )
        .expect("generation runs");

        let mut confirmed = vec![false; mutants.len()];
        for session in &generated.sessions {
            let kills = execute_mutants(&circuit.checked, &circuit.name, &mutants, session)
                .expect("mutants belong to the design");
            for (i, kill) in kills.first_kill.iter().enumerate() {
                if kill.is_some() {
                    confirmed[i] = true;
                }
            }
        }
        for (i, (&claimed, &found)) in generated.killed.iter().zip(&confirmed).enumerate() {
            assert_eq!(
                claimed, found,
                "{bench}: kill claim mismatch on mutant {i} ({})",
                mutants[i].description
            );
        }
    }
}

#[test]
fn podem_tests_detect_their_faults_on_synthesized_circuits() {
    for bench in [Benchmark::C17, Benchmark::C432] {
        let circuit = bench.load().expect("benchmark loads");
        let nl = &circuit.netlist;
        let faults = collapsed_faults(nl);
        let (results, stats) = atpg_all(nl, &faults, 20_000);
        // c432 contains a couple of genuinely redundant faults whose
        // redundancy proof exceeds the budget (the historical c432 is
        // famous for the same); they abort rather than misclassify.
        assert!(
            stats.aborted <= 4,
            "{bench}: too many aborts ({})",
            stats.aborted
        );
        for (fault, result) in faults.iter().zip(&results) {
            match result {
                PodemResult::Test(pattern) => {
                    let sim = fault_simulate(nl, &[*fault], std::slice::from_ref(pattern));
                    assert_eq!(
                        sim.detected_count(),
                        1,
                        "{bench}: PODEM pattern misses {}",
                        fault.describe(nl)
                    );
                }
                PodemResult::Untestable | PodemResult::Aborted => {
                    // Redundancy claims (and abort suspicions) must be
                    // consistent with random evidence: no detection in
                    // 512 patterns.
                    let patterns = musa::testgen::random_patterns(nl.inputs().len(), 512, 3);
                    let sim = fault_simulate(nl, &[*fault], &patterns);
                    assert_eq!(
                        sim.detected_count(),
                        0,
                        "{bench}: fault {} claimed hard/redundant but detected",
                        fault.describe(nl)
                    );
                }
            }
        }
    }
}

#[test]
fn mutation_score_never_counts_killed_as_equivalent() {
    let circuit = Benchmark::C17.load().expect("benchmark loads");
    let mutants = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    let generated = mutation_guided_tests(
        &circuit.checked,
        &circuit.name,
        &mutants,
        &MgConfig::fast(0xE0),
    )
    .unwrap();
    // Re-derive kills from scratch and check the score's invariants.
    let mut killed = 0usize;
    for session in &generated.sessions {
        let kills = execute_mutants(&circuit.checked, &circuit.name, &mutants, session).unwrap();
        killed = killed.max(kills.killed_count());
    }
    assert!(killed <= mutants.len());
}
