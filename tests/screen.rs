//! Static equivalent-mutant pre-screening (`--screen static`):
//!
//! * **soundness** — every mutant the screen proves equivalent really
//!   does survive the scalar engine on arbitrary stimuli (proptest);
//! * **bit-identity** — screening on vs off yields identical sampling
//!   outcomes (kills, MS, NLFCE, every reported number) on every
//!   bundled benchmark, and identical Table 1 / Table 2 renders. The
//!   Table 2 rows *are* `run_sampling_experiment_on` outcomes, so the
//!   all-bench outcome sweep is the table-level guarantee;
//! * **usefulness** — the screen proves at least one equivalent on b01
//!   (the `if rst = 1` width-1 relational site), so the knob is
//!   exercised, not vacuous.

use musa::analysis::screen_population;
use musa::circuits::Benchmark;
use musa::core::{ExperimentConfig, Table1, Table2, run_sampling_experiment_on};
use musa::hdl::Bits;
use musa::mutation::{
    execute_mutants_jobs, generate_mutants, GenerateOptions, Mutant, MutationOperator,
};
use musa::prng::{Prng, SplitMix64};
use musa::testgen::SamplingStrategy;
use proptest::prelude::*;
use std::sync::OnceLock;

fn circuits() -> &'static Vec<(musa::circuits::Circuit, Vec<Mutant>)> {
    static CACHE: OnceLock<Vec<(musa::circuits::Circuit, Vec<Mutant>)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Benchmark::all()
            .into_iter()
            .map(|bench| {
                let circuit = bench.load().expect("benchmark loads");
                let population = generate_mutants(
                    &circuit.checked,
                    &circuit.name,
                    &GenerateOptions::default(),
                );
                (circuit, population)
            })
            .collect()
    })
}

fn random_sequence_for(
    circuit: &musa::circuits::Circuit,
    cycles: usize,
    seed: u64,
) -> Vec<Vec<Bits>> {
    let info = circuit.info();
    let mut rng = SplitMix64::new(seed);
    (0..cycles)
        .map(|_| {
            info.data_inputs
                .iter()
                .map(|&p| {
                    let w = info.symbol(p).width;
                    Bits::new(w, rng.bits(w))
                })
                .collect()
        })
        .collect()
}

/// The screened mutants of one circuit, as (index, mutant) pairs.
fn proven_of(circuit_index: usize) -> Vec<(usize, Mutant)> {
    let (circuit, population) = &circuits()[circuit_index];
    screen_population(&circuit.checked, &circuit.name, population)
        .iter()
        .enumerate()
        .filter(|(_, class)| class.is_proven())
        .map(|(i, _)| (i, population[i].clone()))
        .collect()
}

#[test]
fn b01_static_screen_proves_equivalents() {
    let index = circuits()
        .iter()
        .position(|(c, _)| c.name == "b01")
        .expect("b01 is bundled");
    assert!(
        !proven_of(index).is_empty(),
        "the b01 width-1 relational sites must screen as equivalent"
    );
}

/// Screening on vs off: byte-identical `Debug` of the full outcome —
/// every score, count and metric — once the field that *reports* the
/// screen (`screened`) is masked. Covers Table 2 for every bench, since
/// its rows are exactly these outcomes.
#[test]
fn sampling_outcomes_are_identical_with_screen_on_and_off() {
    for (circuit, population) in circuits() {
        let seed = 0x5C_4EE0 ^ circuit.name.len() as u64;
        let on_cfg = ExperimentConfig::fast(seed).with_screen(true);
        let off_cfg = ExperimentConfig::fast(seed).with_screen(false);
        let on = run_sampling_experiment_on(
            circuit, population, SamplingStrategy::random(0.3), &on_cfg,
        )
        .expect("experiment runs");
        let off = run_sampling_experiment_on(
            circuit, population, SamplingStrategy::random(0.3), &off_cfg,
        )
        .expect("experiment runs");
        assert_eq!(off.screened, 0, "{}: off must not screen", circuit.name);
        let mut masked = on.clone();
        masked.screened = 0;
        assert_eq!(
            format!("{masked:?}"),
            format!("{off:?}"),
            "{}: screening changed a reported number",
            circuit.name
        );
    }
}

#[test]
fn table_renders_are_identical_with_screen_on_and_off() {
    let benches = [Benchmark::C17, Benchmark::B01];
    let on_cfg = ExperimentConfig::fast(0x7AB1E).with_screen(true);
    let off_cfg = on_cfg.with_screen(false);
    let t1_on = Table1::measure(&benches, &MutationOperator::paper_set(), &on_cfg).unwrap();
    let t1_off = Table1::measure(&benches, &MutationOperator::paper_set(), &off_cfg).unwrap();
    assert_eq!(t1_on.render(), t1_off.render());
    let t2_on = Table2::measure(&benches, 0.25, &on_cfg).unwrap();
    let t2_off = Table2::measure(&benches, 0.25, &off_cfg).unwrap();
    assert_eq!(t2_on.render(), t2_off.render());
}

proptest! {
    /// Soundness: a `ProvenEquivalentStatic` verdict is a promise that
    /// no stimulus distinguishes the mutant from the reference. Feed
    /// every proven mutant random sequences through the scalar engine
    /// and demand zero kills.
    #[test]
    fn proven_equivalent_mutants_survive_random_sequences(
        seed in any::<u64>(),
        pick in 0usize..Benchmark::all().len(),
        cycles in 2usize..9,
    ) {
        let (circuit, _) = &circuits()[pick];
        let proven = proven_of(pick);
        if !proven.is_empty() {
            let mutants: Vec<Mutant> =
                proven.iter().map(|(_, m)| m.clone()).take(32).collect();
            let sequence = random_sequence_for(circuit, cycles, seed);
            let kills = execute_mutants_jobs(
                &circuit.checked, &circuit.name, &mutants, &sequence, 1,
            ).unwrap();
            prop_assert_eq!(
                kills.killed_count(), 0,
                "{}: a statically-proven mutant was killed: {:?}",
                &circuit.name, kills.first_kill
            );
        }
    }
}
