//! The bundled benchmark suite is lint-clean: every `.mhdl` circuit
//! passes the full `musa_analysis` catalog with zero findings. A new
//! rule (or a circuit edit) that trips a finding must either fix the
//! source or consciously amend this pin.

use musa::analysis::LINT_RULES;
use musa::circuits::Benchmark;
use musa::core::{lint_bench, render_lint_text, total_findings, LintRow};

#[test]
fn every_bundled_benchmark_lints_clean() {
    let rows: Vec<LintRow> = Benchmark::all().into_iter().map(lint_bench).collect();
    assert_eq!(rows.len(), 11);
    assert_eq!(
        total_findings(&rows),
        0,
        "bundled circuits must stay lint-clean:\n{}",
        render_lint_text(&rows)
    );
    for (bench, row) in Benchmark::all().into_iter().zip(&rows) {
        assert_eq!(row.bench, bench.name());
        assert_eq!(row.file, format!("{}.mhdl", bench.name()));
    }
}

#[test]
fn rule_slugs_are_unique_and_kebab_case() {
    let mut slugs: Vec<&str> = LINT_RULES.iter().map(|r| r.slug()).collect();
    slugs.sort_unstable();
    let before = slugs.len();
    slugs.dedup();
    assert_eq!(before, slugs.len(), "duplicate rule slug");
    assert!(before >= 8, "the catalog promises at least 8 rules");
    for slug in slugs {
        assert!(
            slug.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
            "{slug}"
        );
    }
}
