//! End-to-end pipeline integration tests: the paper's tables on real
//! benchmarks through the public facade, fast preset.

use musa::circuits::Benchmark;
use musa::core::{
    run_sampling_experiment_on, ExperimentConfig, OperatorProfile, Table1, Table2,
};
use musa::mutation::{generate_mutants, GenerateOptions, MutationOperator};
use musa::testgen::SamplingStrategy;

#[test]
fn table1_runs_on_a_paper_circuit() {
    let table = Table1::measure(
        &[Benchmark::B01],
        &MutationOperator::paper_set(),
        &ExperimentConfig::fast(0x1A),
    )
    .expect("table 1 must run");
    // All four paper operators apply to b01.
    assert_eq!(table.rows.len(), 4);
    for row in &table.rows {
        assert_eq!(row.circuit, "b01");
        assert!(row.delta_fc_pct.is_finite());
        assert!(row.delta_l_pct.is_finite());
        assert!(row.nlfce.is_finite());
    }
    let rendered = table.render();
    assert!(rendered.contains("b01"));
}

#[test]
fn table2_strategies_share_budget_and_score_sanely() {
    let table = Table2::measure(&[Benchmark::C17], 0.25, &ExperimentConfig::fast(0x2B))
        .expect("table 2 must run");
    let row = &table.rows[0];
    assert_eq!(row.test_oriented.sampled, row.random.sampled);
    for outcome in [&row.test_oriented, &row.random] {
        assert!(outcome.mutation_score_pct > 0.0);
        assert!(outcome.mutation_score_pct <= 100.0);
        assert!(outcome.data_len > 0);
        assert_eq!(outcome.population, row.test_oriented.population);
    }
}

#[test]
fn profile_weights_feed_sampling() {
    let circuit = Benchmark::C17.load().expect("benchmark loads");
    let config = ExperimentConfig::fast(0x3C);
    let profile = OperatorProfile::measure(&circuit, &MutationOperator::all(), &config)
        .expect("profiling runs");
    assert!(!profile.rows.is_empty());
    let weights = profile.weights();
    let population = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    let outcome = run_sampling_experiment_on(
        &circuit,
        &population,
        SamplingStrategy::test_oriented(0.20, weights),
        &config,
    )
    .expect("experiment runs");
    assert_eq!(outcome.strategy, "test-oriented");
    assert!(outcome.sampled > 0);
    assert!(outcome.sampled < population.len());
}

#[test]
fn growing_the_sample_never_hurts_the_mean_score() {
    let circuit = Benchmark::C17.load().expect("benchmark loads");
    let config = ExperimentConfig::fast(0x4D);
    let population = generate_mutants(
        &circuit.checked,
        &circuit.name,
        &GenerateOptions::default(),
    );
    let small = run_sampling_experiment_on(
        &circuit,
        &population,
        SamplingStrategy::random(0.10),
        &config,
    )
    .unwrap();
    let full = run_sampling_experiment_on(
        &circuit,
        &population,
        SamplingStrategy::random(1.0),
        &config,
    )
    .unwrap();
    assert!(
        full.mutation_score_pct + 1e-9 >= small.mutation_score_pct,
        "full {} < small {}",
        full.mutation_score_pct,
        small.mutation_score_pct
    );
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let config = ExperimentConfig::fast(0x5E);
    let a = Table2::measure(&[Benchmark::C17], 0.25, &config).unwrap();
    let b = Table2::measure(&[Benchmark::C17], 0.25, &config).unwrap();
    assert_eq!(
        a.rows[0].test_oriented.mutation_score_pct,
        b.rows[0].test_oriented.mutation_score_pct
    );
    assert_eq!(a.rows[0].random.nlfce, b.rows[0].random.nlfce);
}
